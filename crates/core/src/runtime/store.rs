//! Per-executor byte-accounted block store with a disk spill tier.
//!
//! Pado's reserved containers are a scarce resource (§2.2): they hold
//! preserved stage outputs, partitions pushed from transient tasks, and
//! the §3.2.7 input cache. This module makes that residency explicit:
//! every block living on an executor is owned by a [`BlockStore`] and
//! accounted in bytes against [`RuntimeConfig::executor_memory_bytes`].
//! Under pressure the store spills least-recently-used *unpinned* blocks
//! to real tempfiles (byte-identical on reload via the compressed
//! [`pado_dag::colcodec`] block format) and reloads them before any use.
//! Budgets charge each block's *encoded* size — the bytes its spill
//! file or push payload actually occupies — while the journal also
//! records the row-format baseline, so compression savings are
//! observable per spill.
//! Blocks pinned by a running task attempt are never spillable, so a
//! task's inputs cannot vanish mid-execution; a single block larger than
//! the whole budget is refused outright ([`StoreError::TooLarge`]),
//! which the master surfaces as a clean
//! [`RuntimeError::MemoryExceeded`](crate::RuntimeError::MemoryExceeded)
//! instead of wedging or aborting the process.
//!
//! [`ExecutorStore`] bundles the block store with the executor's
//! [`LruCache`]: the cache is a best-effort tier *inside* the same
//! budget (combined occupancy = blocks + cache ≤ budget). Making room
//! for a block sheds unpinned cache entries first (they can always be
//! re-sent), then spills unpinned blocks; caching never spills blocks
//! and silently skips when no room remains.
//!
//! Stores with `budget == usize::MAX` (the default) are unlimited: they
//! track bytes but never spill and emit no journal events, so memory
//! accounting is invisible unless a budget is set.
//!
//! The disk tier is fallible: real tempfile I/O errors and the
//! [`SpillFaultPlan`] chaos knob surface the same way. A failed spill
//! *write* keeps the victim resident and degrades to `NoHeadroom`
//! (defer/refuse — never an over-budget admit); a failed spill *read*
//! drops the useless on-disk copy and reports
//! [`StoreError::SpillUnreadable`], which the master resolves as an
//! ordinary task retry (the block re-admits from the master's copy).
//!
//! [`RuntimeConfig::executor_memory_bytes`]:
//! crate::runtime::RuntimeConfig::executor_memory_bytes

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pado_dag::colcodec::{decode_block, encode_block};
use pado_dag::Block;

use crate::compiler::FopId;
use crate::runtime::cache::{CacheKey, LruCache};
use crate::runtime::fault::FaultInjector;
use crate::runtime::journal::{JobEvent, Journal};
use crate::runtime::message::ExecId;

/// Deterministic disk-fault injection for the spill tier (a chaos
/// knob, [`FaultPlan::spill_faults`]): each spill write or read draws
/// from `(seed, executor, operation ordinal)`, so a run replays
/// identically from its seed. Probabilities are in `[0, 1]`; the
/// default injects nothing.
///
/// [`FaultPlan::spill_faults`]: crate::runtime::master::FaultPlan
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpillFaultPlan {
    /// Seed for the per-operation fault draws.
    pub seed: u64,
    /// Probability that a spill write fails (victim stays resident).
    pub write_prob: f64,
    /// Probability that a spill read fails (on-disk copy dropped).
    pub read_prob: f64,
}

/// Budget value meaning "no limit": the store tracks bytes but never
/// spills and emits no journal events.
pub const UNLIMITED: usize = usize::MAX;

/// Canonical byte size of a block: the one sizing rule shared by the
/// store, the [`LruCache`], and the journal's byte counters. This is
/// the block's *encoded* (column-codec, possibly compressed) length —
/// exactly what its spill file or serialized push payload occupies.
pub fn block_bytes(block: &Block) -> usize {
    block.encoded_len()
}

/// Identity of a block resident on an executor.
///
/// Shuffle consumers pin only their routed bucket of a producer's
/// output, not the whole output — pinning whole `ManyToMany` sources
/// would make tight budgets deadlock on plans whose full shuffle input
/// exceeds one executor's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockRef {
    /// A task's whole output partition.
    Output {
        /// Producing fused operator.
        fop: FopId,
        /// Task index within the fop.
        index: usize,
    },
    /// One routed shuffle bucket of a task's output.
    Bucket {
        /// Producing fused operator.
        fop: FopId,
        /// Producer task index.
        index: usize,
        /// Consumer-side parallelism the bucket was routed for.
        dst_par: usize,
        /// Destination task index within that parallelism.
        dst: usize,
    },
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockRef::Output { fop, index } => write!(f, "output {fop}.{index}"),
            BlockRef::Bucket {
                fop,
                index,
                dst_par,
                dst,
            } => write!(f, "bucket {fop}.{index}->{dst}/{dst_par}"),
        }
    }
}

/// Why the store refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Not enough unpinned bytes could be spilled to fit the block. The
    /// caller defers (push backpressure) or refuses a launch
    /// (admission control) instead of deadlocking.
    NoHeadroom {
        /// Bytes the refused block needs.
        needed: usize,
        /// The store's byte budget.
        budget: usize,
        /// Occupancy (blocks + cache) at the time of refusal.
        resident: usize,
    },
    /// A single block exceeds the whole budget: no amount of spilling
    /// can ever fit it. Surfaced as a terminal
    /// [`RuntimeError::MemoryExceeded`](crate::RuntimeError::MemoryExceeded).
    TooLarge {
        /// Bytes of the oversized block.
        bytes: usize,
        /// The store's byte budget.
        budget: usize,
    },
    /// A spill file could not be written or read back (disk full, lost,
    /// corrupt, or an injected fault). The store drops its useless
    /// on-disk copy, so the caller retries: the master defers a push,
    /// leaves a launch pending, or tolerates a producer-local miss —
    /// the block re-admits from the master's copy.
    SpillUnreadable {
        /// The block whose spill file is gone.
        block: BlockRef,
        /// What went wrong reading it.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoHeadroom {
                needed,
                budget,
                resident,
            } => write!(
                f,
                "no headroom for {needed} B (budget {budget} B, resident {resident} B)"
            ),
            StoreError::TooLarge { bytes, budget } => {
                write!(f, "block of {bytes} B exceeds store budget of {budget} B")
            }
            StoreError::SpillUnreadable { block, reason } => {
                write!(f, "spill file for {block} unreadable: {reason}")
            }
        }
    }
}

/// Process-wide spill-file counter: names are unique across every store
/// of every in-process cluster in this process.
static SPILL_FILE_ID: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    let id = SPILL_FILE_ID.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pado-spill-{}-{id}.bin", std::process::id()))
}

#[derive(Debug)]
struct Resident {
    data: Block,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug)]
struct Spill {
    path: PathBuf,
    bytes: usize,
}

/// A byte-accounted store of the blocks resident on one executor, with
/// LRU spill-to-disk under pressure and pin counts protecting blocks a
/// running task depends on.
#[derive(Debug)]
pub struct BlockStore {
    exec: ExecId,
    budget: usize,
    /// Bytes held by the sibling cache tier, counted against the same
    /// budget (kept in sync by [`ExecutorStore`]).
    external_bytes: usize,
    resident_bytes: usize,
    clock: u64,
    resident: HashMap<BlockRef, Resident>,
    spilled: HashMap<BlockRef, Spill>,
    pins: HashMap<BlockRef, usize>,
    journal: Journal,
    faults: SpillFaultPlan,
    spill_writes: u64,
    spill_reads: u64,
}

impl BlockStore {
    /// Creates a store for `exec` bounded to `budget` bytes, emitting
    /// memory events into `journal` (none when unlimited).
    pub fn new(exec: ExecId, budget: usize, journal: Journal) -> Self {
        BlockStore {
            exec,
            budget,
            external_bytes: 0,
            resident_bytes: 0,
            clock: 0,
            resident: HashMap::new(),
            spilled: HashMap::new(),
            pins: HashMap::new(),
            journal,
            faults: SpillFaultPlan::default(),
            spill_writes: 0,
            spill_reads: 0,
        }
    }

    /// Arms deterministic disk-fault injection for the spill tier.
    pub fn set_spill_faults(&mut self, faults: SpillFaultPlan) {
        self.faults = faults;
    }

    fn inject_write_fault(&mut self) -> bool {
        if self.faults.write_prob <= 0.0 {
            return false;
        }
        // Keyed by (executor, per-store spill-write ordinal): a causal
        // clock, so the same seed hits the same spills on both backends.
        self.spill_writes += 1;
        FaultInjector::new(self.faults.seed)
            .spill_write(self.exec as u64, self.spill_writes)
            .unit()
            < self.faults.write_prob
    }

    fn inject_read_fault(&mut self) -> bool {
        if self.faults.read_prob <= 0.0 {
            return false;
        }
        self.spill_reads += 1;
        FaultInjector::new(self.faults.seed)
            .spill_read(self.exec as u64, self.spill_reads)
            .unit()
            < self.faults.read_prob
    }

    fn limited(&self) -> bool {
        self.budget != UNLIMITED
    }

    /// The current byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes of blocks currently resident in memory (excludes spilled
    /// blocks and the cache tier).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Combined occupancy counted against the budget: resident block
    /// bytes plus the sibling cache tier's bytes.
    pub fn occupancy(&self) -> usize {
        self.resident_bytes + self.external_bytes
    }

    fn set_external_bytes(&mut self, bytes: usize) {
        self.external_bytes = bytes;
    }

    /// Whether the store owns this block, resident or spilled.
    pub fn contains(&self, r: BlockRef) -> bool {
        self.resident.contains_key(&r) || self.spilled.contains_key(&r)
    }

    /// Whether this block currently sits on the disk tier.
    pub fn is_spilled(&self, r: BlockRef) -> bool {
        self.spilled.contains_key(&r)
    }

    /// Bytes of a block on the disk tier (`None` when not spilled).
    pub fn spilled_bytes(&self, r: BlockRef) -> Option<usize> {
        self.spilled.get(&r).map(|s| s.bytes)
    }

    /// Current pin count of a block.
    pub fn pin_count(&self, r: BlockRef) -> usize {
        self.pins.get(&r).copied().unwrap_or(0)
    }

    fn emit(&self, event: JobEvent) {
        if self.limited() {
            self.journal.emit(None, event);
        }
    }

    /// Spills one resident block to disk. Returns false when the write
    /// failed (the block stays resident and accounted).
    fn spill_one(&mut self, r: BlockRef) -> bool {
        let entry = match self.resident.remove(&r) {
            Some(e) => e,
            None => return false,
        };
        let path = spill_path();
        let payload = match encode_block(&entry.data) {
            Ok(p) => p,
            Err(_) => {
                // A block the codec cannot serialize behaves like a
                // disk that refused the write: it stays resident.
                self.resident.insert(r, entry);
                return false;
            }
        };
        if self.inject_write_fault() || fs::write(&path, payload).is_err() {
            // Disk refused the spill: keep the block resident; the
            // caller degrades to NoHeadroom (defer/refuse), never aborts.
            self.resident.insert(r, entry);
            return false;
        }
        // Saturating: a byte-accounting drift under injected faults must
        // surface as a metrics anomaly, never an underflow panic.
        self.resident_bytes = self.resident_bytes.saturating_sub(entry.bytes);
        let raw_bytes = entry.data.raw_len();
        self.spilled.insert(
            r,
            Spill {
                path,
                bytes: entry.bytes,
            },
        );
        self.emit(JobEvent::BlockSpilled {
            exec: self.exec,
            block: r,
            bytes: entry.bytes,
            raw_bytes,
            resident: self.occupancy(),
        });
        true
    }

    /// Picks the least-recently-used unpinned resident and spills it.
    /// Returns whether a block actually moved to disk — false when only
    /// pinned blocks remain or the disk refused the write, in which
    /// case pressure relief has gone as far as it can.
    fn spill_lru_victim(&mut self) -> bool {
        let victim = self
            .resident
            .iter()
            .filter(|(k, _)| self.pins.get(*k).copied().unwrap_or(0) == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k);
        victim.map(|k| self.spill_one(k)).unwrap_or(false)
    }

    /// Spills unpinned LRU residents until `bytes` more fit under the
    /// budget, or fails with `NoHeadroom` when only pinned blocks remain.
    fn headroom_for(&mut self, bytes: usize) -> Result<(), StoreError> {
        while self.occupancy() + bytes > self.budget {
            if !self.spill_lru_victim() {
                return Err(StoreError::NoHeadroom {
                    needed: bytes,
                    budget: self.budget,
                    resident: self.occupancy(),
                });
            }
        }
        Ok(())
    }

    /// Admits a block, spilling unpinned residents as needed. Inserting
    /// a block the store already owns just refreshes its recency.
    pub fn insert(&mut self, r: BlockRef, data: &Block) -> Result<(), StoreError> {
        self.clock += 1;
        if let Some(e) = self.resident.get_mut(&r) {
            e.last_used = self.clock;
            return Ok(());
        }
        if self.spilled.contains_key(&r) {
            return Ok(());
        }
        let bytes = block_bytes(data);
        if !self.limited() {
            self.resident_bytes += bytes;
            self.resident.insert(
                r,
                Resident {
                    data: Arc::clone(data),
                    bytes,
                    last_used: self.clock,
                },
            );
            return Ok(());
        }
        if bytes > self.budget {
            return Err(StoreError::TooLarge {
                bytes,
                budget: self.budget,
            });
        }
        self.headroom_for(bytes)?;
        self.resident_bytes += bytes;
        self.resident.insert(
            r,
            Resident {
                data: Arc::clone(data),
                bytes,
                last_used: self.clock,
            },
        );
        self.emit(JobEvent::BlockAdmitted {
            exec: self.exec,
            block: r,
            bytes,
            resident: self.occupancy(),
        });
        Ok(())
    }

    /// Admits a block, writing it straight to the disk tier when memory
    /// has no headroom — the producer-local commit path must never
    /// stall on its own output. Only `TooLarge` (and disk failure) can
    /// refuse.
    pub fn insert_or_spill(&mut self, r: BlockRef, data: &Block) -> Result<(), StoreError> {
        match self.insert(r, data) {
            Err(StoreError::NoHeadroom { .. }) => {
                let bytes = block_bytes(data);
                if self.inject_write_fault() {
                    return Err(StoreError::SpillUnreadable {
                        block: r,
                        reason: "spill write failed: injected disk fault".into(),
                    });
                }
                let path = spill_path();
                let payload = match encode_block(data) {
                    Ok(p) => p,
                    Err(e) => {
                        return Err(StoreError::SpillUnreadable {
                            block: r,
                            reason: format!("spill encode failed: {e}"),
                        })
                    }
                };
                if let Err(e) = fs::write(&path, payload) {
                    return Err(StoreError::SpillUnreadable {
                        block: r,
                        reason: format!("spill write failed: {e}"),
                    });
                }
                self.spilled.insert(r, Spill { path, bytes });
                self.emit(JobEvent::BlockAdmitted {
                    exec: self.exec,
                    block: r,
                    bytes,
                    resident: self.occupancy(),
                });
                self.emit(JobEvent::BlockSpilled {
                    exec: self.exec,
                    block: r,
                    bytes,
                    raw_bytes: data.raw_len(),
                    resident: self.occupancy(),
                });
                Ok(())
            }
            other => other,
        }
    }

    /// Reloads a spilled block into memory, byte-identical to what was
    /// spilled; the spill file is deleted.
    fn reload(&mut self, r: BlockRef) -> Result<(), StoreError> {
        let spill = match self.spilled.get(&r) {
            Some(s) => Spill {
                path: s.path.clone(),
                bytes: s.bytes,
            },
            None => return Ok(()),
        };
        self.headroom_for(spill.bytes)?;
        let read = if self.inject_read_fault() {
            Err("injected disk fault".to_string())
        } else {
            fs::read(&spill.path)
                .map_err(|e| e.to_string())
                .and_then(|raw| decode_block(&raw).map_err(|e| e.to_string()))
        };
        let data = match read {
            Ok(data) => data,
            Err(reason) => {
                // The on-disk copy is useless; drop it so the owner can
                // re-admit the block from the master's copy on retry
                // instead of hitting the same corpse forever.
                self.spilled.remove(&r);
                let _ = fs::remove_file(&spill.path);
                return Err(StoreError::SpillUnreadable { block: r, reason });
            }
        };
        self.spilled.remove(&r);
        let _ = fs::remove_file(&spill.path);
        self.clock += 1;
        self.resident_bytes += spill.bytes;
        self.resident.insert(
            r,
            Resident {
                data,
                bytes: spill.bytes,
                last_used: self.clock,
            },
        );
        self.emit(JobEvent::BlockLoaded {
            exec: self.exec,
            block: r,
            bytes: spill.bytes,
            resident: self.occupancy(),
        });
        Ok(())
    }

    /// Looks up a block, reloading it from the disk tier if spilled.
    pub fn get(&mut self, r: BlockRef) -> Result<Option<Block>, StoreError> {
        if self.spilled.contains_key(&r) {
            self.reload(r)?;
        }
        self.clock += 1;
        let clock = self.clock;
        Ok(self.resident.get_mut(&r).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.data)
        }))
    }

    /// Pins a block for a running attempt, making it resident first
    /// (inserting `data` if the store does not own it yet, reloading if
    /// spilled). Pinned blocks are never spilled; pins are counted.
    pub fn pin(&mut self, r: BlockRef, data: &Block) -> Result<(), StoreError> {
        if self.spilled.contains_key(&r) {
            self.reload(r)?;
        } else {
            self.insert(r, data)?;
        }
        *self.pins.entry(r).or_insert(0) += 1;
        self.emit(JobEvent::BlockPinned {
            exec: self.exec,
            block: r,
        });
        Ok(())
    }

    /// Drops one pin of a block. Unknown refs are tolerated (pins may
    /// have been cleared wholesale by an executor loss).
    pub fn unpin(&mut self, r: BlockRef) {
        if let Some(n) = self.pins.get_mut(&r) {
            *n -= 1;
            if *n == 0 {
                self.pins.remove(&r);
            }
            self.emit(JobEvent::BlockUnpinned {
                exec: self.exec,
                block: r,
            });
        }
    }

    /// Releases an unpinned block (resident or spilled), freeing its
    /// bytes. Pinned blocks are left in place; returns whether the
    /// block is gone.
    pub fn remove_unpinned(&mut self, r: BlockRef) -> bool {
        if self.pins.get(&r).copied().unwrap_or(0) > 0 {
            return false;
        }
        if let Some(e) = self.resident.remove(&r) {
            self.resident_bytes = self.resident_bytes.saturating_sub(e.bytes);
            self.emit(JobEvent::BlockReleased {
                exec: self.exec,
                block: r,
                bytes: e.bytes,
                resident: self.occupancy(),
            });
            true
        } else if let Some(s) = self.spilled.remove(&r) {
            let _ = fs::remove_file(&s.path);
            self.emit(JobEvent::BlockReleased {
                exec: self.exec,
                block: r,
                bytes: s.bytes,
                resident: self.occupancy(),
            });
            true
        } else {
            true
        }
    }

    /// Drops everything without journaling — the executor is gone, so
    /// its memory is gone too (the checker clears its replayed state on
    /// the loss event for the same reason).
    pub fn clear_silent(&mut self) {
        for (_, s) in self.spilled.drain() {
            let _ = fs::remove_file(&s.path);
        }
        self.resident.clear();
        self.resident_bytes = 0;
        self.pins.clear();
    }

    /// Shrinks (or grows) the budget, spilling unpinned residents to
    /// get under the new limit. When pinned blocks (or a sibling cache
    /// the caller chose not to shed) keep occupancy above the request,
    /// the applied budget is clamped up to the occupancy so the
    /// "occupancy ≤ budget" invariant keeps holding; the journaled
    /// event records the applied value. Returns the applied budget.
    pub fn set_budget(&mut self, requested: usize) -> usize {
        let was_unlimited = !self.limited();
        self.budget = requested;
        if requested == UNLIMITED {
            return UNLIMITED;
        }
        if was_unlimited {
            // Unlimited stores journal nothing, so pins taken before this
            // shrink are invisible to replay; emit them now or the
            // matching unpins would look like pins from nowhere.
            let held: Vec<(BlockRef, usize)> = self.pins.iter().map(|(r, n)| (*r, *n)).collect();
            for (r, n) in held {
                for _ in 0..n {
                    self.emit(JobEvent::BlockPinned {
                        exec: self.exec,
                        block: r,
                    });
                }
            }
        }
        while self.occupancy() > self.budget {
            if !self.spill_lru_victim() {
                break;
            }
        }
        let applied = requested.max(self.occupancy());
        self.budget = applied;
        self.journal.emit(
            None,
            JobEvent::StoreBudgetChanged {
                exec: self.exec,
                budget: applied,
            },
        );
        applied
    }
}

impl Drop for BlockStore {
    fn drop(&mut self) {
        for (_, s) in self.spilled.drain() {
            let _ = fs::remove_file(&s.path);
        }
    }
}

/// Shared handle to one executor's store, held by the master (admission
/// control, pinning, pushes) and the executor's worker slots (input
/// cache) alike.
pub type StoreHandle = Arc<Mutex<ExecutorStore>>;

/// One executor's full memory domain: the byte-accounted block store
/// plus the §3.2.7 input cache, both counted against one budget.
#[derive(Debug)]
pub struct ExecutorStore {
    exec: ExecId,
    journal: Journal,
    blocks: BlockStore,
    cache: LruCache,
}

impl ExecutorStore {
    /// Creates the store for `exec`: `budget` bounds blocks + cache
    /// combined, `cache_capacity` sub-bounds the cache tier.
    pub fn new(exec: ExecId, budget: usize, cache_capacity: usize, journal: Journal) -> Self {
        ExecutorStore {
            exec,
            journal: journal.clone(),
            blocks: BlockStore::new(exec, budget, journal),
            cache: LruCache::new(cache_capacity),
        }
    }

    /// Wraps a new store in its shared handle.
    pub fn handle(
        exec: ExecId,
        budget: usize,
        cache_capacity: usize,
        journal: Journal,
    ) -> StoreHandle {
        Arc::new(Mutex::new(ExecutorStore::new(
            exec,
            budget,
            cache_capacity,
            journal,
        )))
    }

    /// The store's byte budget.
    pub fn budget(&self) -> usize {
        self.blocks.budget()
    }

    /// Arms deterministic disk-fault injection for the spill tier. See
    /// [`SpillFaultPlan`].
    pub fn set_spill_faults(&mut self, faults: SpillFaultPlan) {
        self.blocks.set_spill_faults(faults);
    }

    /// Combined occupancy: resident block bytes + cache bytes.
    pub fn occupancy(&self) -> usize {
        self.blocks.resident_bytes() + self.cache.used_bytes()
    }

    fn sync_external(&mut self) {
        self.blocks.set_external_bytes(self.cache.used_bytes());
    }

    /// Sheds unpinned cache entries until `extra` more bytes fit under
    /// the budget (cache data can always be re-sent; spilled blocks
    /// cost a reload — shed the cheap tier first).
    fn make_room(&mut self, extra: usize) {
        if self.blocks.budget() == UNLIMITED {
            return;
        }
        while self.occupancy() + extra > self.blocks.budget()
            && self.cache.shed_lru_unpinned().is_some()
        {}
        self.sync_external();
    }

    /// Admits a block under the combined budget: sheds unpinned cache
    /// entries, then spills unpinned blocks; refuses with `NoHeadroom`
    /// when only pinned bytes remain (push backpressure defers).
    pub fn admit(&mut self, r: BlockRef, data: &Block) -> Result<(), StoreError> {
        if !self.blocks.contains(r) {
            self.make_room(block_bytes(data));
        }
        self.blocks.insert(r, data)
    }

    /// Admits a producer-local block, spilling it straight to disk when
    /// memory has no headroom — commits never stall on their own output.
    pub fn admit_or_spill(&mut self, r: BlockRef, data: &Block) -> Result<(), StoreError> {
        if !self.blocks.contains(r) {
            self.make_room(block_bytes(data));
        }
        self.blocks.insert_or_spill(r, data)
    }

    /// Pins a block for a launching attempt (insert-if-absent,
    /// reload-if-spilled). See [`BlockStore::pin`].
    pub fn pin(&mut self, r: BlockRef, data: &Block) -> Result<(), StoreError> {
        if !self.blocks.contains(r) || self.blocks.is_spilled(r) {
            self.make_room(block_bytes(data));
        }
        self.blocks.pin(r, data)
    }

    /// Drops one pin. See [`BlockStore::unpin`].
    pub fn unpin(&mut self, r: BlockRef) {
        self.blocks.unpin(r);
    }

    /// Reads a block back, reloading it from the disk tier if spilled
    /// (shedding unpinned cache entries first for reload headroom). See
    /// [`BlockStore::get`].
    pub fn get(&mut self, r: BlockRef) -> Result<Option<Block>, StoreError> {
        if let Some(bytes) = self.blocks.spilled_bytes(r) {
            self.make_room(bytes);
        }
        self.blocks.get(r)
    }

    /// Releases an unpinned block. See [`BlockStore::remove_unpinned`].
    pub fn remove_unpinned(&mut self, r: BlockRef) -> bool {
        self.blocks.remove_unpinned(r)
    }

    /// Whether the store owns this block (resident or spilled).
    pub fn contains(&self, r: BlockRef) -> bool {
        self.blocks.contains(r)
    }

    /// Clears everything silently (executor loss). See
    /// [`BlockStore::clear_silent`].
    pub fn clear_silent(&mut self) {
        self.blocks.clear_silent();
        // The cache died with the executor's memory too.
        self.cache = LruCache::new(self.cache.capacity_bytes());
        self.sync_external();
    }

    /// Applies a new budget: sheds unpinned cache entries first, then
    /// lets the block store spill; returns the applied budget (clamped
    /// up to occupancy when pinned bytes exceed the request).
    pub fn set_budget(&mut self, requested: usize) -> usize {
        if requested != UNLIMITED {
            while self.occupancy() > requested && self.cache.shed_lru_unpinned().is_some() {}
            self.sync_external();
        }
        self.blocks.set_budget(requested)
    }

    /// Cache lookup, journaling §3.2.7 effectiveness as
    /// `CacheHit`/`CacheMiss` (emitted whatever the budget — cache
    /// telemetry is not a memory-pressure event).
    pub fn cache_get(&mut self, key: CacheKey) -> Option<Block> {
        match self.cache.get(key) {
            Some(data) => {
                self.journal.emit(
                    None,
                    JobEvent::CacheHit {
                        exec: self.exec,
                        key,
                        bytes: block_bytes(&data),
                    },
                );
                Some(data)
            }
            None => {
                self.journal.emit(
                    None,
                    JobEvent::CacheMiss {
                        exec: self.exec,
                        key,
                    },
                );
                None
            }
        }
    }

    /// Best-effort cache insert under the combined budget: sheds its
    /// own unpinned entries for room but never spills blocks; skips
    /// caching (returns false) when no room remains. Failing to cache
    /// never fails a task.
    pub fn cache_put(&mut self, key: CacheKey, data: Block) -> bool {
        let bytes = block_bytes(&data);
        if self.blocks.budget() != UNLIMITED {
            while self.occupancy() + bytes > self.blocks.budget() {
                if self.cache.shed_lru_unpinned().is_none() {
                    self.sync_external();
                    return false;
                }
            }
        }
        let cached = self.cache.put(key, data);
        self.sync_external();
        cached
    }

    /// Pins a cache entry for the duration of a task that read it, so
    /// concurrent inserts cannot shed an input mid-use.
    pub fn cache_pin(&mut self, key: CacheKey) -> bool {
        self.cache.pin(key)
    }

    /// Drops a cache pin.
    pub fn cache_unpin(&mut self, key: CacheKey) {
        self.cache.unpin(key);
    }

    /// Keys currently cached (the executor reports these to the master
    /// for cache-aware scheduling).
    pub fn cache_keys(&self) -> Vec<CacheKey> {
        self.cache.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::journal::JournalMeta;
    use pado_dag::{block_from_vec, empty_block, Value};

    fn block(n: usize) -> Block {
        block_from_vec((0..n).map(|i| Value::from(i as i64)).collect())
    }

    /// Encoded size of the canonical 4-record test block — the unit the
    /// byte-budget tests below are denominated in.
    fn bsz() -> usize {
        block_bytes(&block(4))
    }

    fn out(fop: FopId, index: usize) -> BlockRef {
        BlockRef::Output { fop, index }
    }

    fn events(journal: &Journal) -> Vec<JobEvent> {
        journal.freeze(JournalMeta::default()).to_events()
    }

    #[test]
    fn block_bytes_is_the_encoded_length() {
        let b = block(3);
        assert_eq!(block_bytes(&b), b.encoded_len());
        assert_eq!(block_bytes(&b), encode_block(&b).unwrap().len());
        assert!(block_bytes(&empty_block()) > 0, "even empty has a header");
        // The whole point of charging encoded bytes: a compressible
        // block is accounted below its row-format size.
        let big = block_from_vec((0..1000).map(|i| Value::from(i % 5)).collect());
        assert!(block_bytes(&big) < big.raw_len());
    }

    #[test]
    fn unlimited_store_tracks_bytes_but_emits_nothing() {
        let j = Journal::new();
        let mut s = BlockStore::new(1, UNLIMITED, j.clone());
        s.insert(out(0, 0), &block(4)).unwrap();
        assert_eq!(s.resident_bytes(), bsz());
        assert_eq!(s.get(out(0, 0)).unwrap().unwrap().len(), 4);
        assert!(events(&j).is_empty());
    }

    #[test]
    fn shrink_from_unlimited_journals_held_pins() {
        let j = Journal::new();
        let mut s = BlockStore::new(1, UNLIMITED, j.clone());
        let a = block(4);
        s.pin(out(0, 0), &a).unwrap();
        s.pin(out(0, 0), &a).unwrap();
        assert!(events(&j).is_empty());
        // The shrink turns accounting on; held pins must be journaled
        // before anything else so later unpins replay cleanly.
        s.set_budget(2 * bsz());
        s.unpin(out(0, 0));
        s.unpin(out(0, 0));
        let evs = events(&j);
        let pins = evs
            .iter()
            .filter(|e| matches!(e, JobEvent::BlockPinned { .. }))
            .count();
        let unpins = evs
            .iter()
            .filter(|e| matches!(e, JobEvent::BlockUnpinned { .. }))
            .count();
        assert_eq!(pins, 2);
        assert_eq!(unpins, 2);
    }

    #[test]
    fn pressure_spills_lru_and_reload_is_byte_identical() {
        let j = Journal::new();
        let budget = 2 * bsz();
        let mut s = BlockStore::new(1, budget, j.clone());
        let a = block(4);
        let b = block(4);
        s.insert(out(0, 0), &a).unwrap();
        s.insert(out(0, 1), &b).unwrap();
        assert_eq!(s.resident_bytes(), budget);
        // Third block forces the LRU (0,0) out to disk.
        s.insert(out(0, 2), &block(4)).unwrap();
        assert!(s.is_spilled(out(0, 0)));
        assert_eq!(s.resident_bytes(), budget);
        // Reload is byte-identical and re-admitted (spilling another).
        let back = s.get(out(0, 0)).unwrap().unwrap();
        assert_eq!(encode_block(&back).unwrap(), encode_block(&a).unwrap());
        assert!(!s.is_spilled(out(0, 0)));
        let evs = events(&j);
        // Every spill records both the compressed bytes written and the
        // row-format baseline they replaced.
        assert!(evs.iter().any(|e| matches!(
            e,
            JobEvent::BlockSpilled { bytes, raw_bytes, .. }
                if *bytes == bsz() && *raw_bytes == a.raw_len()
        )));
        assert!(evs
            .iter()
            .any(|e| matches!(e, JobEvent::BlockLoaded { .. })));
        // Occupancy self-reports never exceed the budget.
        for e in &evs {
            if let JobEvent::BlockAdmitted { resident, .. }
            | JobEvent::BlockSpilled { resident, .. }
            | JobEvent::BlockLoaded { resident, .. } = e
            {
                assert!(*resident <= budget, "occupancy {resident} over budget");
            }
        }
    }

    #[test]
    fn pinned_blocks_are_never_spilled() {
        let j = Journal::new();
        let mut s = BlockStore::new(1, 2 * bsz(), j.clone());
        let a = block(4);
        let b = block(4);
        s.pin(out(0, 0), &a).unwrap();
        s.pin(out(0, 1), &b).unwrap();
        // Both pinned: a third block has nowhere to go.
        assert!(matches!(
            s.insert(out(0, 2), &block(1)),
            Err(StoreError::NoHeadroom { .. })
        ));
        s.unpin(out(0, 1));
        // Now (0,1) can spill to make room.
        s.insert(out(0, 2), &block(1)).unwrap();
        assert!(s.is_spilled(out(0, 1)));
        assert!(!s.is_spilled(out(0, 0)));
    }

    #[test]
    fn oversized_block_is_too_large() {
        let b = block(3);
        let need = block_bytes(&b);
        let mut s = BlockStore::new(1, need - 1, Journal::new());
        assert!(matches!(
            s.insert(out(0, 0), &b),
            Err(StoreError::TooLarge { bytes, budget })
                if bytes == need && budget == need - 1
        ));
    }

    #[test]
    fn insert_or_spill_goes_straight_to_disk_under_pressure() {
        let j = Journal::new();
        let mut s = BlockStore::new(1, bsz(), j.clone());
        s.pin(out(0, 0), &block(4)).unwrap();
        // No headroom and nothing spillable, but the producer-local
        // commit still lands (on disk).
        s.insert_or_spill(out(1, 0), &block(2)).unwrap();
        assert!(s.is_spilled(out(1, 0)));
        // Reading it back needs headroom of its own: with everything
        // pinned the reload refuses rather than overflow the budget.
        assert!(matches!(
            s.get(out(1, 0)),
            Err(StoreError::NoHeadroom { .. })
        ));
        s.unpin(out(0, 0));
        assert_eq!(s.get(out(1, 0)).unwrap().unwrap().len(), 2);
    }

    #[test]
    fn set_budget_spills_and_clamps_to_pinned_occupancy() {
        let j = Journal::new();
        let mut s = BlockStore::new(1, UNLIMITED, j.clone());
        s.pin(out(0, 0), &block(4)).unwrap(); // pinned: bsz() bytes
        s.insert(out(0, 1), &block(4)).unwrap(); // unpinned: bsz() bytes
        let applied = s.set_budget(bsz() / 2);
        // The unpinned block spilled; the pinned bytes cannot, so the
        // applied budget clamps up to them.
        assert_eq!(applied, bsz());
        assert!(s.is_spilled(out(0, 1)));
        assert!(!s.is_spilled(out(0, 0)));
        assert!(events(&j)
            .iter()
            .any(|e| matches!(e, JobEvent::StoreBudgetChanged { budget, .. } if *budget == bsz())));
    }

    #[test]
    fn remove_unpinned_frees_spill_files_and_respects_pins() {
        let mut s = BlockStore::new(1, bsz(), Journal::new());
        s.pin(out(0, 0), &block(4)).unwrap();
        assert!(!s.remove_unpinned(out(0, 0)), "pinned block must stay");
        s.unpin(out(0, 0));
        assert!(s.remove_unpinned(out(0, 0)));
        assert!(!s.contains(out(0, 0)));
    }

    #[test]
    fn spill_files_are_deleted_on_drop() {
        let path;
        {
            let mut s = BlockStore::new(1, bsz(), Journal::new());
            s.insert(out(0, 0), &block(4)).unwrap();
            s.pin(out(0, 1), &block(4)).unwrap();
            assert!(s.is_spilled(out(0, 0)));
            path = s.spilled.get(&out(0, 0)).unwrap().path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists(), "spill file survived drop");
    }

    #[test]
    fn executor_store_sheds_cache_before_spilling_blocks() {
        let j = Journal::new();
        let budget = 2 * bsz();
        let mut s = ExecutorStore::new(1, budget, budget, j.clone());
        assert!(s.cache_put(7, block(4))); // bsz() cache bytes
        s.admit(out(0, 0), &block(4)).unwrap(); // bsz() block bytes
        assert_eq!(s.occupancy(), budget);
        // Admitting another block sheds the cache entry, not a spill.
        s.admit(out(0, 1), &block(4)).unwrap();
        assert!(s.cache_keys().is_empty());
        assert!(!s.blocks.is_spilled(out(0, 0)));
        assert_eq!(s.occupancy(), budget);
    }

    #[test]
    fn cache_put_never_spills_blocks_and_skips_when_full() {
        let budget = 2 * bsz();
        let mut s = ExecutorStore::new(1, budget, budget, Journal::new());
        s.pin(out(0, 0), &block(4)).unwrap();
        s.pin(out(0, 1), &block(4)).unwrap();
        assert!(!s.cache_put(7, block(1)), "no room: caching must skip");
        assert!(s.cache_keys().is_empty());
        assert!(!s.blocks.is_spilled(out(0, 0)));
        assert!(!s.blocks.is_spilled(out(0, 1)));
    }

    #[test]
    fn cache_get_journals_hits_and_misses() {
        let j = Journal::new();
        let mut s = ExecutorStore::new(3, UNLIMITED, 2 * bsz(), j.clone());
        assert!(s.cache_get(9).is_none());
        s.cache_put(9, block(2));
        assert!(s.cache_get(9).is_some());
        let sz = block_bytes(&block(2));
        let evs = events(&j);
        assert!(evs
            .iter()
            .any(|e| matches!(e, JobEvent::CacheMiss { exec: 3, key: 9 })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, JobEvent::CacheHit { exec: 3, key: 9, bytes } if *bytes == sz)));
    }

    #[test]
    fn injected_spill_write_fault_degrades_to_no_headroom() {
        let budget = 2 * bsz();
        let mut s = BlockStore::new(1, budget, Journal::new());
        s.set_spill_faults(SpillFaultPlan {
            seed: 11,
            write_prob: 1.0,
            read_prob: 0.0,
        });
        s.insert(out(0, 0), &block(4)).unwrap();
        s.insert(out(0, 1), &block(4)).unwrap();
        // Pressure relief needs a spill, the disk refuses every write:
        // the admit degrades to NoHeadroom, never an over-budget insert.
        assert!(matches!(
            s.insert(out(0, 2), &block(4)),
            Err(StoreError::NoHeadroom { .. })
        ));
        assert!(!s.is_spilled(out(0, 0)));
        assert!(!s.is_spilled(out(0, 1)));
        assert!(s.occupancy() <= budget);
    }

    #[test]
    fn injected_spill_read_fault_heals_so_a_repin_recovers() {
        let mut s = BlockStore::new(1, 2 * bsz(), Journal::new());
        let a = block(4);
        s.insert(out(0, 0), &a).unwrap();
        s.insert(out(0, 1), &block(4)).unwrap();
        s.insert(out(0, 2), &block(4)).unwrap();
        assert!(s.is_spilled(out(0, 0)));
        s.set_spill_faults(SpillFaultPlan {
            seed: 11,
            write_prob: 0.0,
            read_prob: 1.0,
        });
        // The read fails; the corrupt on-disk copy is dropped with it.
        assert!(matches!(
            s.pin(out(0, 0), &a),
            Err(StoreError::SpillUnreadable { .. })
        ));
        assert!(!s.contains(out(0, 0)), "useless spill entry healed away");
        // A retry re-admits from the caller's copy and succeeds.
        s.set_spill_faults(SpillFaultPlan::default());
        s.pin(out(0, 0), &a).unwrap();
        assert_eq!(s.get(out(0, 0)).unwrap().unwrap().len(), 4);
    }

    #[test]
    fn missing_spill_file_is_reported_and_healed() {
        let mut s = BlockStore::new(1, 2 * bsz(), Journal::new());
        s.insert(out(0, 0), &block(4)).unwrap();
        s.insert(out(0, 1), &block(4)).unwrap();
        s.insert(out(0, 2), &block(4)).unwrap();
        assert!(s.is_spilled(out(0, 0)));
        let path = s.spilled.get(&out(0, 0)).unwrap().path.clone();
        fs::remove_file(&path).unwrap();
        assert!(matches!(
            s.get(out(0, 0)),
            Err(StoreError::SpillUnreadable { .. })
        ));
        assert!(!s.contains(out(0, 0)), "lost spill entry healed away");
    }

    #[test]
    fn spill_fault_draws_replay_from_the_seed() {
        let run = |seed: u64| {
            let mut s = BlockStore::new(1, 2 * bsz(), Journal::new());
            s.set_spill_faults(SpillFaultPlan {
                seed,
                write_prob: 0.5,
                read_prob: 0.0,
            });
            (0..8)
                .map(|i| s.insert(out(0, i), &block(4)).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same seed, same fault schedule");
    }

    #[test]
    fn block_ref_displays() {
        assert_eq!(out(3, 1).to_string(), "output 3.1");
        let b = BlockRef::Bucket {
            fop: 3,
            index: 1,
            dst_par: 4,
            dst: 2,
        };
        assert_eq!(b.to_string(), "bucket 3.1->2/4");
    }
}
