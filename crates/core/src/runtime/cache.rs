//! A byte-bounded LRU cache for task input caching (§3.2.7).
//!
//! Executors cache broadcast inputs (e.g. the latest ML model) so that
//! tasks scheduled on the same executor do not need the data re-sent from
//! reserved executors. When the cache fills, the least recently used entry
//! is evicted.

use std::collections::HashMap;
use std::sync::Arc;

use pado_dag::Block;

use crate::runtime::store::block_bytes;

/// Cache key: the plan-wide id of the fused operator whose output is
/// cached, qualified by the consumer-side routing (broadcast inputs are
/// whole datasets, so the fop id suffices).
pub type CacheKey = usize;

/// A byte-bounded LRU cache of materialized input datasets.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: usize,
    used_bytes: usize,
    clock: u64,
    entries: HashMap<CacheKey, Entry>,
    /// Pin counts of entries currently read by running tasks: pinned
    /// entries are never evicted or shed (a put that would need to
    /// evict a pinned entry is refused instead).
    pins: HashMap<CacheKey, usize>,
}

#[derive(Debug)]
struct Entry {
    data: Block,
    bytes: usize,
    last_used: u64,
}

impl LruCache {
    /// Creates a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            clock: 0,
            entries: HashMap::new(),
            pins: HashMap::new(),
        }
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a dataset, refreshing its recency.
    pub fn get(&mut self, key: CacheKey) -> Option<Block> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.data)
        })
    }

    /// Inserts a dataset, evicting least-recently-used unpinned entries
    /// as needed.
    ///
    /// Datasets larger than the whole capacity are not cached at all, but
    /// any older version under the same key is still dropped so the cache
    /// never serves stale data. A put that could only fit by evicting
    /// pinned entries is refused. Returns whether the dataset was cached.
    pub fn put(&mut self, key: CacheKey, data: Block) -> bool {
        let bytes = block_bytes(&data);
        // Drop any existing version of this key *before* deciding whether
        // the new one fits: rejecting an oversized dataset must not leave a
        // stale version behind for `get` to serve.
        if let Some(old) = self.entries.remove(&key) {
            self.used_bytes -= old.bytes;
        }
        if bytes > self.capacity_bytes {
            return false;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            if self.shed_lru_unpinned().is_none() {
                // Only pinned entries remain: refuse rather than evict
                // data a running task is reading.
                return false;
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            Entry {
                data,
                bytes,
                last_used: self.clock,
            },
        );
        self.used_bytes += bytes;
        true
    }

    /// Keys currently cached, unordered.
    pub fn keys(&self) -> Vec<CacheKey> {
        self.entries.keys().copied().collect()
    }

    /// Pins a cached entry for the duration of a task that reads it.
    /// Returns false when the key is not cached.
    pub fn pin(&mut self, key: CacheKey) -> bool {
        if !self.entries.contains_key(&key) {
            return false;
        }
        *self.pins.entry(key).or_insert(0) += 1;
        true
    }

    /// Drops one pin of an entry; unknown keys are tolerated.
    pub fn unpin(&mut self, key: CacheKey) {
        if let Some(n) = self.pins.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.pins.remove(&key);
            }
        }
    }

    /// Evicts the least-recently-used unpinned entry, returning the
    /// bytes freed (None when every entry is pinned or the cache is
    /// empty). Used for its own evictions and when the executor store
    /// needs combined-budget headroom.
    pub fn shed_lru_unpinned(&mut self) -> Option<usize> {
        let lru = self
            .entries
            .iter()
            .filter(|(k, _)| self.pins.get(*k).copied().unwrap_or(0) == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)?;
        let evicted = self.entries.remove(&lru)?;
        self.used_bytes -= evicted.bytes;
        Some(evicted.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::{block_from_vec, Value};

    fn dataset(n_records: usize) -> Block {
        block_from_vec((0..n_records).map(|i| Value::from(i as i64)).collect())
    }

    /// Encoded size of the `n`-record test dataset (what the cache
    /// accounts); strictly increasing in `n` for these contents.
    fn sz(n: usize) -> usize {
        block_bytes(&dataset(n))
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(3 * sz(1));
        c.put(1, dataset(1));
        c.put(2, dataset(1));
        c.put(3, dataset(1));
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(1).is_some());
        c.put(4, dataset(1));
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert!(c.get(4).is_some());
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut c = LruCache::new(sz(2) - 1);
        assert!(!c.put(1, dataset(2)));
        assert!(c.is_empty());
    }

    #[test]
    fn oversized_reinsert_drops_the_stale_version() {
        assert!(sz(2) > sz(1));
        let mut c = LruCache::new(sz(1));
        assert!(c.put(1, dataset(1)));
        // The new version no longer fits; the cache must not keep serving
        // the old one.
        assert!(!c.put(1, dataset(2)));
        assert!(c.get(1).is_none(), "stale entry survived oversized put");
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_bytes() {
        let mut c = LruCache::new(1000);
        c.put(1, dataset(5));
        assert_eq!(c.used_bytes(), sz(5));
        c.put(1, dataset(2));
        assert_eq!(c.used_bytes(), sz(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_frees_enough_space() {
        assert!(sz(8) > sz(5));
        let mut c = LruCache::new(2 * sz(5));
        c.put(1, dataset(5));
        c.put(2, dataset(5));
        c.put(3, dataset(8)); // does not fit beside either 5-record entry
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        assert_eq!(c.used_bytes(), sz(8));
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let mut c = LruCache::new(sz(1) + sz(2));
        c.put(1, dataset(1));
        c.put(2, dataset(1));
        assert!(c.pin(1));
        assert!(c.pin(2));
        assert!(!c.pin(99), "cannot pin what is not cached");
        // Fitting the 2-record dataset would need an eviction, but both
        // entries are pinned: the put is refused and nothing is evicted.
        assert!(!c.put(3, dataset(2)));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_some());
        c.unpin(2);
        assert!(c.put(3, dataset(2)));
        assert!(c.get(2).is_none(), "unpinned entry was shed");
        assert!(c.get(1).is_some(), "pinned entry survived");
    }

    #[test]
    fn keys_lists_entries() {
        let mut c = LruCache::new(1000);
        c.put(7, dataset(1));
        c.put(9, dataset(1));
        let mut keys = c.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![7, 9]);
    }
}
