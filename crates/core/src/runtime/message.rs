//! Control-plane messages between the master and executors.

use std::collections::BTreeMap;

use pado_dag::{Block, MainSlot};

use crate::compiler::FopId;
use crate::runtime::cache::CacheKey;

/// Identifier of an executor; monotonically assigned, never reused (a
/// replacement container gets a fresh id).
pub type ExecId = usize;

/// Identifier of one task launch attempt; monotonically assigned.
pub type AttemptId = u64;

/// How a side input reaches an executor.
///
/// `records` always carries the data (the master is the in-process stand-in
/// for the reserved store), but when `expect_cached` is set the executor
/// serves its cached copy instead; the byte-transfer metrics count the
/// shipped bytes only on cache misses, mirroring what a distributed
/// deployment would move over the network.
#[derive(Debug, Clone)]
pub struct SideData {
    /// Cache key, present when this input is cacheable (§3.2.7).
    pub key: Option<CacheKey>,
    /// The broadcast records, shared with the master's location table.
    pub records: Block,
    /// Whether the master believes the executor caches this key already.
    pub expect_cached: bool,
}

/// A fault the master injects into one task attempt (chaos testing).
///
/// Injection rides inside the [`TaskSpec`] so the decision stays with the
/// master — deterministic per seed — while the *effect* exercises the real
/// executor-side failure paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The user function returns an error (`Result` path).
    Error,
    /// The user function panics (unwind-isolation path).
    Panic,
    /// The task stalls for this many milliseconds before computing
    /// (straggler / speculation path).
    Delay(u64),
    /// The task computes normally, then stalls for this many milliseconds
    /// before reporting `TaskDone` — the window where output exists but
    /// the report is still in flight when an eviction lands.
    DelayDone(u64),
    /// A mid-task allocation fails (the executor store's budget is
    /// exhausted at the worst moment): the attempt must report
    /// `TaskFailed` and recover through the normal retry path — never
    /// abort the process.
    Oom,
}

/// One task launch: the master assembles and routes all main inputs, so
/// the executor only computes.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// This launch attempt.
    pub attempt: AttemptId,
    /// The fused operator to execute.
    pub fop: FopId,
    /// The task index within the fop.
    pub index: usize,
    /// Routed main inputs, one slot per main edge; blocks are shared with
    /// the master's location table, never copied.
    pub mains: Vec<MainSlot>,
    /// Side inputs by fused-chain member index.
    pub sides: BTreeMap<usize, SideData>,
    /// Whether the task should pre-aggregate its output before pushing
    /// (set when all consumers are combine operators and partial
    /// aggregation is enabled).
    pub preaggregate: bool,
    /// Fault to inject into this attempt, if any (chaos testing only).
    pub inject: Option<InjectedFault>,
}

/// Messages executors (and eviction injectors) send to the master.
///
/// `Clone` because the transport layer buffers sent messages for
/// retransmission until they are acknowledged; `Block` payloads are
/// `Arc`-shared, so the clone is shallow.
#[derive(Debug, Clone)]
pub enum MasterMsg {
    /// A task attempt finished on an executor.
    TaskDone {
        /// Executor that ran the task.
        exec: ExecId,
        /// The completed attempt.
        attempt: AttemptId,
        /// Output block of the task, created once here and only referenced
        /// afterwards.
        output: Block,
        /// Records removed by transient-side pre-aggregation.
        preaggregated: usize,
        /// Whether the side input was served from the executor cache.
        cache_hit: bool,
        /// Keys the executor caches after this task.
        cached_keys: Vec<CacheKey>,
    },
    /// A task attempt failed on an executor: the user function returned an
    /// error or panicked (the panic was caught; the worker slot survives).
    TaskFailed {
        /// Executor that ran the attempt.
        exec: ExecId,
        /// The failed attempt.
        attempt: AttemptId,
        /// Human-readable failure reason (error message or panic payload).
        reason: String,
    },
    /// The resource manager evicted a transient container.
    Evict {
        /// The evicted executor.
        exec: ExecId,
    },
    /// A reserved executor failed (machine fault, §3.2.6).
    FailReserved {
        /// The failed executor.
        exec: ExecId,
    },
}

/// Messages the master sends to executors.
///
/// `Clone` for the same reason as [`MasterMsg`]: unacknowledged launches
/// stay buffered in the transport for retransmission.
#[derive(Debug, Clone)]
pub enum ExecutorMsg {
    /// Run a task.
    Run(TaskSpec),
    /// A reconfiguration transaction committed: adopt the new epoch for
    /// all subsequent outbound envelopes. Handled by the executor's
    /// control thread, never forwarded to worker slots. Inbound envelope
    /// stamps already carry the epoch, so this broadcast only matters for
    /// executors with nothing else addressed to them after the commit.
    AdvanceEpoch(u64),
    /// Shut down the worker.
    Stop,
}
