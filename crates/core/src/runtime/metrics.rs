//! Job-level execution metrics.

/// Counters collected by the master over one job execution.
///
/// `relaunched_tasks` mirrors the paper's "ratio of relaunched tasks to
/// original tasks" metric (Figures 5–7): every task launch beyond the
/// first attempt of each task counts as a relaunch. `tasks_launched`
/// therefore decomposes as `original_tasks + relaunched_tasks +
/// speculative_launches` in runs where every task eventually commits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Tasks in the physical plan (the denominator of the relaunch ratio).
    pub original_tasks: usize,
    /// Task launches, including relaunches.
    pub tasks_launched: usize,
    /// Launches beyond each task's first attempt.
    pub relaunched_tasks: usize,
    /// Transient container evictions handled.
    pub evictions: usize,
    /// Reserved executor failures handled.
    pub reserved_failures: usize,
    /// Bytes of task output pushed from transient to reserved executors.
    pub bytes_pushed: usize,
    /// Bytes of side input shipped to executors (cache misses).
    pub side_bytes_sent: usize,
    /// Bytes of side input served from executor caches instead of being
    /// re-sent (cache hits).
    pub side_bytes_saved: usize,
    /// Side-input cache hits across all tasks.
    pub cache_hits: usize,
    /// Side-input cache misses across all tasks.
    pub cache_misses: usize,
    /// Records removed by transient-side partial aggregation.
    pub records_preaggregated: usize,
    /// Completed-stage recomputations triggered by reserved failures.
    pub stage_recomputations: usize,
    /// Task attempts that failed in user code (error or caught panic).
    pub task_failures: usize,
    /// Speculative duplicate attempts launched against stragglers.
    pub speculative_launches: usize,
    /// Tasks whose speculative attempt committed before the original.
    pub speculative_wins: usize,
    /// Executors blacklisted for repeated user-code failures.
    pub blacklisted_executors: usize,
    /// Control-plane messages the (simulated) network dropped, including
    /// partition black-holes.
    pub messages_dropped: usize,
    /// Control-plane messages the network delivered twice.
    pub messages_duplicated: usize,
    /// Retransmissions of unacknowledged control messages.
    pub messages_retransmitted: usize,
    /// Received duplicates suppressed by a dedup window.
    pub messages_deduplicated: usize,
    /// Highest retransmission count any single message needed (0 when
    /// every message was acknowledged on its first transmission) — the
    /// per-message boundedness witness.
    pub max_message_retransmissions: usize,
    /// Heartbeat-staleness flags raised by the failure detector (an
    /// executor went quiet past the miss threshold, dead or not).
    pub heartbeats_missed: usize,
    /// Executors declared dead by the heartbeat failure detector.
    pub executors_declared_dead: usize,
    /// Blocks spilled from executor stores to the disk tier.
    pub blocks_spilled: usize,
    /// Bytes written to the disk tier by spills (column-codec
    /// compressed sizes — what the spill files actually hold).
    pub spill_bytes: usize,
    /// Bytes the same spilled blocks would have occupied in the row
    /// (per-record) encoding; `spill_bytes < spill_raw_bytes` whenever
    /// the column codecs saved anything.
    pub spill_raw_bytes: usize,
    /// Spilled blocks reloaded into memory before use.
    pub blocks_loaded: usize,
    /// `TaskDone` pushes deferred by reserved-store backpressure.
    pub pushes_deferred: usize,
    /// Deferred pushes later admitted on retry.
    pub pushes_resumed: usize,
    /// Allocation failures injected by the OOM chaos family.
    pub oom_injected: usize,
    /// Highest combined store occupancy (blocks + cache, bytes) any
    /// executor self-reported; always ≤ the configured budget.
    pub peak_store_bytes: usize,
    /// Executor-observed input-cache hits (one per side-input lookup
    /// served from cache; `cache_hits` counts per-task summaries).
    pub store_cache_hits: usize,
    /// Executor-observed input-cache misses.
    pub store_cache_misses: usize,
    /// Reconfiguration transactions that committed (epoch advanced).
    pub reconfigs_committed: usize,
    /// Reconfiguration transactions that rolled back.
    pub reconfigs_aborted: usize,
    /// The reconfiguration epoch the job finished under (0 when no
    /// reconfiguration ever committed).
    pub final_epoch: u64,
    /// Payload frames the master rejected for carrying a stale epoch.
    pub frames_fenced: usize,
    /// Master recoveries that rebuilt state from the write-ahead log.
    pub wal_recoveries: usize,
    /// WAL frames replayed across all recoveries.
    pub wal_frames_replayed: usize,
    /// WAL frames discarded by recovery scans (torn tails, corrupt
    /// frames, frames stranded beyond interior corruption).
    pub wal_frames_truncated: usize,
    /// Recoveries that fell back to the last good snapshot because of
    /// interior WAL corruption.
    pub wal_snapshot_restores: usize,
}

impl JobMetrics {
    /// Relaunched-to-original task ratio (0 when the plan is empty).
    pub fn relaunch_ratio(&self) -> f64 {
        if self.original_tasks == 0 {
            0.0
        } else {
            self.relaunched_tasks as f64 / self.original_tasks as f64
        }
    }

    /// Compares the counters that must agree between execution backends
    /// for the same plan and fault schedule, returning the disagreeing
    /// `(counter, self, other)` triples (empty = no drift).
    ///
    /// Only logically determined counters participate: plan-shaped totals
    /// (`original_tasks`), fault-schedule echoes (`evictions`,
    /// `reserved_failures`, `oom_injected`, `task_failures`), and epoch
    /// machinery (`reconfigs_committed`, `reconfigs_aborted`,
    /// `final_epoch`, `wal_recoveries`, `stage_recomputations`).
    ///
    /// Deliberately excluded:
    /// - placement/timing-sensitive counters (`bytes_pushed`,
    ///   `side_bytes_*`, cache and spill counters, `speculative_*`,
    ///   `relaunched_tasks`, `heartbeats_missed`, `peak_store_bytes`,
    ///   `records_preaggregated`) — both backends are correct while
    ///   disagreeing on these;
    /// - wire counters (`messages_dropped` / `_duplicated` /
    ///   `_retransmitted` / `_deduplicated`,
    ///   `max_message_retransmissions`) — real wall-clock retransmission
    ///   timers make these inherently nondeterministic.
    pub fn backend_drift(&self, other: &JobMetrics) -> Vec<(&'static str, usize, usize)> {
        let pairs: [(&'static str, usize, usize); 10] = [
            ("original_tasks", self.original_tasks, other.original_tasks),
            ("task_failures", self.task_failures, other.task_failures),
            ("evictions", self.evictions, other.evictions),
            (
                "reserved_failures",
                self.reserved_failures,
                other.reserved_failures,
            ),
            ("oom_injected", self.oom_injected, other.oom_injected),
            (
                "stage_recomputations",
                self.stage_recomputations,
                other.stage_recomputations,
            ),
            (
                "reconfigs_committed",
                self.reconfigs_committed,
                other.reconfigs_committed,
            ),
            (
                "reconfigs_aborted",
                self.reconfigs_aborted,
                other.reconfigs_aborted,
            ),
            (
                "final_epoch",
                self.final_epoch as usize,
                other.final_epoch as usize,
            ),
            ("wal_recoveries", self.wal_recoveries, other.wal_recoveries),
        ];
        pairs.into_iter().filter(|(_, a, b)| a != b).collect()
    }

    /// Side-input cache hit rate over all lookups (0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let m = JobMetrics::default();
        assert_eq!(m.relaunch_ratio(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let m = JobMetrics {
            original_tasks: 10,
            relaunched_tasks: 3,
            cache_hits: 3,
            cache_misses: 1,
            ..JobMetrics::default()
        };
        assert!((m.relaunch_ratio() - 0.3).abs() < 1e-12);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn backend_drift_reports_only_deterministic_disagreements() {
        let a = JobMetrics {
            original_tasks: 8,
            task_failures: 1,
            bytes_pushed: 1000,
            messages_retransmitted: 4,
            ..JobMetrics::default()
        };
        // Placement- and wire-sensitive differences are tolerated...
        let b = JobMetrics {
            bytes_pushed: 2400,
            messages_retransmitted: 0,
            ..a.clone()
        };
        assert!(a.backend_drift(&b).is_empty());
        // ...but a deterministic counter disagreeing is drift.
        let c = JobMetrics {
            task_failures: 2,
            final_epoch: 3,
            ..a.clone()
        };
        let drift = a.backend_drift(&c);
        assert_eq!(drift, vec![("task_failures", 1, 2), ("final_epoch", 0, 3)]);
    }
}
