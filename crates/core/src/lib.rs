//! The Pado engine: compiler and runtime (the paper's primary
//! contribution).
//!
//! Pado runs dataflow programs on a mix of *transient* containers
//! (eviction-prone resources harvested from over-provisioned
//! latency-critical jobs) and a small number of *reserved* containers.
//! Instead of checkpointing intermediate results, the
//! [`compiler`] places the operators most likely to cause cascading
//! recomputations on reserved containers (Algorithm 1), partitions the
//! DAG into Pado Stages at placement boundaries (Algorithm 2), and the
//! [`runtime`] pushes transient task outputs to reserved executors as
//! soon as they complete, so an eviction only ever relaunches the evicted
//! tasks of the running stage.
#![warn(missing_docs)]

pub mod compiler;
pub mod error;
pub mod exec;
pub mod kernels;
pub mod runtime;

pub use error::{CompileError, RuntimeError};
