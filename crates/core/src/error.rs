//! Error types for the Pado compiler and runtime.

use std::fmt;

use pado_dag::{DagError, OpId};

use crate::runtime::{JobEvent, JobMetrics, StallDiagnostics};

/// Errors produced by the Pado compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The input logical DAG failed validation.
    InvalidDag(DagError),
    /// An operator's parallelism could not be resolved (no input to
    /// inherit from and none declared).
    UnresolvedParallelism(OpId),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidDag(e) => write!(f, "invalid logical DAG: {e}"),
            CompileError::UnresolvedParallelism(id) => {
                write!(f, "cannot resolve parallelism of operator {id}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::InvalidDag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for CompileError {
    fn from(e: DagError) -> Self {
        CompileError::InvalidDag(e)
    }
}

/// Errors produced by the Pado runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The job was aborted before completion.
    Aborted(String),
    /// An executor channel closed unexpectedly.
    Disconnected(String),
    /// The cluster has no alive executor of the required type.
    NoExecutors(&'static str),
    /// Compilation failed while preparing the job.
    Compile(CompileError),
    /// One task exhausted its retry budget: every attempt failed in user
    /// code (error or panic). Carries the job's event log so the failure
    /// history — which executors ran which attempts — is inspectable.
    TaskFailed {
        /// Fused operator of the failing task.
        fop: usize,
        /// Task index within the fop.
        index: usize,
        /// Failed attempts consumed (equals `max_task_attempts`).
        attempts: usize,
        /// Reason reported by the final failed attempt.
        reason: String,
        /// Event log up to the terminal failure.
        events: Vec<JobEvent>,
    },
    /// The master saw no progress within the event timeout. Carries the
    /// partial event log and metrics gathered before the job wedged.
    Wedged {
        /// Milliseconds waited since the last progress event.
        waited_ms: u64,
        /// Event log up to the stall.
        events: Vec<JobEvent>,
        /// Metrics gathered before the stall (boxed to keep the error
        /// small on the hot `Result` paths).
        metrics: Box<JobMetrics>,
    },
    /// A single block (or one task's pinned input set) exceeds the
    /// per-executor store budget: no amount of spilling can ever fit
    /// it, so the job fails cleanly instead of wedging.
    MemoryExceeded {
        /// Bytes that were required resident at once.
        bytes: usize,
        /// The configured `executor_memory_bytes` budget.
        budget: usize,
        /// What needed the bytes (block ref or task id).
        context: String,
    },
    /// The threaded backend's supervisor (hang watchdog or wall-clock
    /// deadline) observed a wedged run, cancelled it cooperatively, and
    /// captured a diagnostics snapshot — queue depths, per-worker state,
    /// and the tail of the journal — so a hang in CI reads as a bug
    /// report instead of an opaque timeout.
    Stalled {
        /// Where and why the run stopped making progress (boxed to keep
        /// the error small on the hot `Result` paths).
        diagnostics: Box<StallDiagnostics>,
    },
    /// A scheduler invariant was violated (a bug in the runtime, not in
    /// user code); surfaced instead of panicking the master thread.
    Invariant(String),
    /// The runtime configuration is self-contradictory (e.g. a
    /// retransmission backoff that outlives the dead-executor timeout);
    /// rejected before the job starts.
    Config(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Aborted(why) => write!(f, "job aborted: {why}"),
            RuntimeError::Disconnected(who) => write!(f, "channel to {who} disconnected"),
            RuntimeError::NoExecutors(kind) => write!(f, "no alive {kind} executors"),
            RuntimeError::Compile(e) => write!(f, "compilation failed: {e}"),
            RuntimeError::TaskFailed {
                fop,
                index,
                attempts,
                reason,
                ..
            } => write!(
                f,
                "task {fop}.{index} failed after {attempts} attempts: {reason}"
            ),
            RuntimeError::Wedged {
                waited_ms, events, ..
            } => write!(
                f,
                "job aborted: no progress within {waited_ms} ms ({} events logged)",
                events.len()
            ),
            RuntimeError::MemoryExceeded {
                bytes,
                budget,
                context,
            } => write!(
                f,
                "executor memory exceeded: {context} needs {bytes} B resident but the \
                 store budget is {budget} B"
            ),
            RuntimeError::Stalled { diagnostics } => write!(f, "job stalled: {diagnostics}"),
            RuntimeError::Invariant(msg) => write!(f, "scheduler invariant violated: {msg}"),
            RuntimeError::Config(msg) => write!(f, "invalid runtime configuration: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CompileError::InvalidDag(DagError::Empty);
        assert!(e.to_string().contains("invalid logical DAG"));
        let r: RuntimeError = e.into();
        assert!(r.to_string().contains("compilation failed"));
        assert!(RuntimeError::NoExecutors("transient")
            .to_string()
            .contains("transient"));
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = CompileError::InvalidDag(DagError::Empty);
        assert!(e.source().is_some());
        assert!(CompileError::UnresolvedParallelism(3).source().is_none());
    }
}
