//! Vectorized column-at-a-time kernels for the data-plane hot paths.
//!
//! When every input block of a `GroupByKey`, `Combine`, or hash-shuffle
//! route exposes a column layout, these kernels run over the flat column
//! vectors instead of dispatching per boxed [`Value`] record: grouping
//! is a stable sort of a `u32` permutation, routing is a primitive copy
//! per record, and neither clones a single `Value`. The row
//! implementations in [`crate::exec`] remain the semantic oracle — every
//! kernel here must produce byte-identical output, which the equivalence
//! suites assert across the chaos matrices:
//!
//! - grouping order: a stable sort by (key, input position) reproduces
//!   `BTreeMap<Value, _>` iteration exactly — ascending keys (floats by
//!   `total_cmp` via a monotone bit map), values in encounter order;
//! - shuffle buckets: [`ScalarCol::hash_at`] feeds the same
//!   `DefaultHasher` the same tag byte and payload writes as
//!   `Value::hash`, so every record lands in the row path's bucket.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

use pado_dag::{
    block_from_columns, empty_block, Block, Columns, CombineFn, MainSlot, ScalarCol, Value,
};

/// Gathers every part of every main slot into one concatenated pair of
/// key/value columns. `None` when there are no parts, any part is
/// non-columnar or not pair-shaped, or the scalar kinds differ across
/// parts — the caller then takes the row path.
pub fn gather_pairs(mains: &[MainSlot]) -> Option<(ScalarCol, ScalarCol)> {
    let mut parts: Vec<(&ScalarCol, &ScalarCol)> = Vec::new();
    for slot in mains {
        for b in slot.parts() {
            match b.columns() {
                Some(Columns::Pair { keys, vals }) => parts.push((keys, vals)),
                _ => return None,
            }
        }
    }
    let ((k0, v0), rest) = parts.split_first()?;
    let mut keys = k0.empty_like();
    let mut vals = v0.empty_like();
    for (k, v) in std::iter::once(&(*k0, *v0)).chain(rest) {
        if !keys.append(k) || !vals.append(v) {
            return None;
        }
    }
    Some((keys, vals))
}

/// Collects each part's column layout (kinds may differ across parts —
/// a global combine folds records one part at a time). `None` as soon
/// as any part is non-columnar.
pub fn gather_columns(mains: &[MainSlot]) -> Option<Vec<&Columns>> {
    let mut out = Vec::new();
    for slot in mains {
        for b in slot.parts() {
            out.push(b.columns()?);
        }
    }
    Some(out)
}

/// Iterates the runs of equal keys in `BTreeMap` order: for each run,
/// calls `emit(key_index, &positions)` where positions are the original
/// input indices in encounter order.
fn for_each_group(keys: &ScalarCol, mut emit: impl FnMut(u32, &[u32])) {
    let perm = keys.sort_perm();
    let mut i = 0;
    while i < perm.len() {
        let mut j = i + 1;
        while j < perm.len() && keys.eq_at(perm[i] as usize, perm[j] as usize) {
            j += 1;
        }
        emit(perm[i], &perm[i..j]);
        i = j;
    }
}

/// Vectorized `GroupByKey`: `(key, [values...])` pairs, keys ascending,
/// values in input order.
pub fn group_by_key(keys: &ScalarCol, vals: &ScalarCol) -> Vec<Value> {
    let mut out = Vec::new();
    for_each_group(keys, |first, run| {
        let vs: Vec<Value> = run.iter().map(|&i| vals.value_at(i as usize)).collect();
        out.push(Value::pair(keys.value_at(first as usize), Value::list(vs)));
    });
    out
}

/// Vectorized keyed `Combine`: folds each key's values in input order,
/// starting from the combiner's identity — the exact merge sequence of
/// the row path.
pub fn combine_keyed(keys: &ScalarCol, vals: &ScalarCol, f: &CombineFn) -> Vec<Value> {
    let mut out = Vec::new();
    for_each_group(keys, |first, run| {
        let mut acc = f.identity();
        for &i in run {
            acc = f.merge(acc, vals.value_at(i as usize));
        }
        out.push(Value::pair(keys.value_at(first as usize), acc));
    });
    out
}

/// Vectorized global `Combine`: folds every record of every part in
/// order, constructing each operand fresh from its column (no clones).
pub fn combine_global(parts: &[&Columns], f: &CombineFn) -> Value {
    let mut acc = f.identity();
    for cols in parts {
        for i in 0..cols.len() {
            acc = f.merge(acc, cols.value_at(i));
        }
    }
    acc
}

fn bucket_of(col: &ScalarCol, i: usize, p: u64) -> usize {
    let mut h = DefaultHasher::new();
    col.hash_at(i, &mut h);
    (h.finish() % p) as usize
}

fn seal(cols: Columns) -> Block {
    if cols.is_empty() {
        empty_block()
    } else {
        block_from_columns(cols)
    }
}

/// Vectorized hash-shuffle routing: buckets a columnar block into `p`
/// column-built blocks without cloning a record. Pair records hash by
/// key, scalars by the whole value — the same rule as
/// [`crate::exec::route_hash`]. `None` for non-columnar blocks.
pub fn route_columnar(block: &Block, p: usize) -> Option<Vec<Block>> {
    match block.columns()? {
        Columns::Pair { keys, vals } => {
            let mut kb: Vec<ScalarCol> = (0..p).map(|_| keys.empty_like()).collect();
            let mut vb: Vec<ScalarCol> = (0..p).map(|_| vals.empty_like()).collect();
            for i in 0..keys.len() {
                let b = bucket_of(keys, i, p as u64);
                kb[b].push_from(keys, i);
                vb[b].push_from(vals, i);
            }
            Some(
                kb.into_iter()
                    .zip(vb)
                    .map(|(keys, vals)| seal(Columns::Pair { keys, vals }))
                    .collect(),
            )
        }
        Columns::Scalar(c) => {
            let mut bs: Vec<ScalarCol> = (0..p).map(|_| c.empty_like()).collect();
            for i in 0..c.len() {
                let b = bucket_of(c, i, p as u64);
                bs[b].push_from(c, i);
            }
            Some(bs.into_iter().map(|c| seal(Columns::Scalar(c))).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pado_dag::block_from_vec;

    fn pair_rows(n: i64, k: i64) -> Vec<Value> {
        (0..n)
            .map(|i| Value::pair(Value::from(i % k), Value::from(i)))
            .collect()
    }

    #[test]
    fn gather_pairs_concatenates_slot_parts_in_order() {
        let slots = [
            MainSlot::from_blocks(vec![
                block_from_vec(pair_rows(3, 2)),
                block_from_vec(pair_rows(2, 2)),
            ]),
            MainSlot::from_vec(pair_rows(1, 2)),
        ];
        let (keys, vals) = gather_pairs(&slots).expect("columnar");
        assert_eq!(keys.len(), 6);
        assert_eq!(vals.len(), 6);
        let ScalarCol::I64(k) = keys else { panic!() };
        assert_eq!(k, vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn gather_pairs_refuses_mixed_or_row_blocks() {
        // Non-pair block.
        let slots = [MainSlot::from_vec(vec![Value::from(1i64)])];
        assert!(gather_pairs(&slots).is_none());
        // Pair blocks whose key kinds differ across parts.
        let slots = [MainSlot::from_blocks(vec![
            block_from_vec(vec![Value::pair(Value::from(1i64), Value::from(1i64))]),
            block_from_vec(vec![Value::pair(Value::from("s"), Value::from(1i64))]),
        ])];
        assert!(gather_pairs(&slots).is_none());
        // Heterogeneous (row-fallback) block.
        let slots = [MainSlot::from_vec(vec![
            Value::pair(Value::from(1i64), Value::from(1i64)),
            Value::Unit,
        ])];
        assert!(gather_pairs(&slots).is_none());
        // No parts at all.
        assert!(gather_pairs(&[]).is_none());
    }

    #[test]
    fn group_by_key_matches_btreemap_order() {
        let rows = pair_rows(20, 3);
        let (keys, vals) = gather_pairs(&[MainSlot::from_vec(rows)]).unwrap();
        let out = group_by_key(&keys, &vals);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].key(), Some(&Value::from(0i64)));
        let vs = out[0].val().unwrap().as_list().unwrap();
        let got: Vec<i64> = vs.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(got, vec![0, 3, 6, 9, 12, 15, 18], "values keep input order");
    }

    #[test]
    fn combine_keyed_folds_in_input_order() {
        let rows = pair_rows(10, 2);
        let (keys, vals) = gather_pairs(&[MainSlot::from_vec(rows)]).unwrap();
        let out = combine_keyed(&keys, &vals, &CombineFn::sum_i64());
        assert_eq!(
            out,
            vec![
                Value::pair(Value::from(0i64), Value::from(2 + 4 + 6 + 8i64)),
                Value::pair(Value::from(1i64), Value::from(1 + 3 + 5 + 7 + 9i64)),
            ]
        );
    }

    #[test]
    fn route_columnar_clones_nothing() {
        let block = block_from_vec(pair_rows(500, 17));
        block.columns().expect("columnar");
        let before = pado_dag::value::clone_count();
        let buckets = route_columnar(&block, 8).expect("columnar route");
        assert_eq!(
            pado_dag::value::clone_count(),
            before,
            "routing must not clone"
        );
        assert_eq!(buckets.iter().map(|b| b.len()).sum::<usize>(), 500);
    }
}
