//! Empirical CDFs and the paper's trace-analysis summary tables.

use crate::margin::MarginAnalysis;

/// An empirical CDF over lifetime samples (minutes).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    pub fn new(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Fraction of samples `<= x`.
    pub fn at(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&s| s <= x) as f64 / self.sorted.len() as f64
    }

    /// The value at quantile `q` (nearest-rank).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.sorted.is_empty() {
            return 0;
        }
        let pos = (q.clamp(0.0, 1.0) * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted[pos]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the CDF at each of `xs` (for plotting Figure 1).
    pub fn series(&self, xs: &[u64]) -> Vec<(u64, f64)> {
        xs.iter().map(|&x| (x, self.at(x))).collect()
    }
}

/// One row of Table 1: lifetime percentiles for a margin.
#[derive(Debug, Clone)]
pub struct LifetimeRow {
    /// Safety margin.
    pub margin: f64,
    /// 10th-percentile lifetime, minutes.
    pub p10: u64,
    /// Median lifetime, minutes.
    pub p50: u64,
    /// 90th-percentile lifetime, minutes.
    pub p90: u64,
}

/// Summarizes a margin analysis into a Table 1 row.
pub fn lifetime_row(a: &MarginAnalysis) -> LifetimeRow {
    LifetimeRow {
        margin: a.margin,
        p10: a.percentile(0.10),
        p50: a.percentile(0.50),
        p90: a.percentile(0.90),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let c = Cdf::new(vec![5, 1, 3, 3, 9]);
        let mut prev = 0.0;
        for x in 0..12 {
            let v = c.at(x);
            assert!(v >= prev);
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
        assert_eq!(c.at(9), 1.0);
    }

    #[test]
    fn quantiles_pick_order_statistics() {
        let c = Cdf::new(vec![10, 20, 30, 40, 50]);
        assert_eq!(c.quantile(0.0), 10);
        assert_eq!(c.quantile(0.5), 30);
        assert_eq!(c.quantile(1.0), 50);
    }

    #[test]
    fn empty_cdf_is_harmless() {
        let c = Cdf::new(Vec::new());
        assert_eq!(c.at(7), 0.0);
        assert_eq!(c.quantile(0.9), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn series_pairs_inputs_with_values() {
        let c = Cdf::new(vec![1, 2, 3]);
        let s = c.series(&[0, 2, 5]);
        assert_eq!(s, vec![(0, 0.0), (2, 2.0 / 3.0), (5, 1.0)]);
    }
}
