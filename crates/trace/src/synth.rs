//! Synthetic latency-critical job memory-usage traces.
//!
//! Stand-in for the Google ClusterData2011_2 trace the paper analyzes
//! (§2.1): per-container average memory usage sampled at 5-minute
//! intervals over several weeks. The generator reproduces the properties
//! the paper's analysis depends on: over-provisioned LC containers whose
//! usage leaves roughly a quarter of memory idle on average, diurnal load
//! swings, short-term stochastic fluctuation (AR(1)), and occasional load
//! spikes — so aggressive harvesting (tiny safety margins) yields
//! minute-scale transient lifetimes while conservative margins yield
//! hour-scale lifetimes, as in Figure 1 / Table 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples per hour at the trace's native 5-minute interval.
pub const SAMPLES_PER_HOUR: usize = 12;

/// Parameters of the synthetic LC workload.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of LC containers to simulate.
    pub containers: usize,
    /// Trace length in days (the Google trace spans ~29 days).
    pub days: usize,
    /// Mean usage as a fraction of container memory (controls idle
    /// memory; 0.74 leaves ~26 % idle, Table 2's baseline).
    pub mean_usage: f64,
    /// Amplitude of the diurnal swing (fraction of memory).
    pub diurnal_amplitude: f64,
    /// Amplitude of a medium-period (~1.5 h) load oscillation (fraction
    /// of memory); drives hour-scale evictions at large safety margins.
    pub meso_amplitude: f64,
    /// Standard deviation of the AR(1) fluctuation per 5-minute step.
    pub noise_sigma: f64,
    /// AR(1) coefficient (persistence of fluctuations).
    pub noise_phi: f64,
    /// Probability that a load spike starts at any 5-minute sample.
    pub spike_prob: f64,
    /// Spike height (fraction of memory).
    pub spike_height: f64,
    /// Spike duration in 5-minute samples.
    pub spike_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            containers: 60,
            days: 29,
            mean_usage: 0.74,
            diurnal_amplitude: 0.08,
            meso_amplitude: 0.035,
            noise_sigma: 0.009,
            noise_phi: 0.85,
            spike_prob: 0.004,
            spike_height: 0.12,
            spike_len: 6,
            seed: 2017,
        }
    }
}

/// One LC container's usage series (fractions of its memory, 5-minute
/// samples).
#[derive(Debug, Clone)]
pub struct UsageSeries {
    /// Usage fractions in `[0, 1]`, one per 5-minute interval.
    pub samples: Vec<f64>,
}

/// Draws a standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates the synthetic trace: one usage series per LC container.
pub fn generate(config: &SynthConfig) -> Vec<UsageSeries> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.days * 24 * SAMPLES_PER_HOUR;
    (0..config.containers)
        .map(|_| {
            // Containers differ in phase, base load, and volatility: some
            // LC jobs are calm (long transient lifetimes even at tight
            // margins), others churn constantly — this heterogeneity is
            // what gives the lifetime CDFs their long right tails.
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let base = config.mean_usage + normal(&mut rng) * 0.03;
            let volatility = (normal(&mut rng) * 1.2 - 0.8).exp().clamp(0.02, 4.0);
            let meso_scale: f64 = if rng.gen_bool(0.35) {
                0.0
            } else {
                rng.gen_range(0.2..1.6)
            };
            // Real memory usage moves in steps: many jobs hold an
            // allocation flat for a while. Each container re-evaluates its
            // usage only every `hold` samples, producing the plateaus that
            // give tight margins their minutes-long lifetimes.
            let hold: usize = match rng.gen_range(0u32..10) {
                0..=2 => 1,
                3..=6 => rng.gen_range(2..6),
                _ => rng.gen_range(6..20),
            };
            let mut ar = 0.0f64;
            let mut spike_left = 0usize;
            let mut held = 0.0f64;
            let mut samples = Vec::with_capacity(n);
            for t in 0..n {
                let hour = (t % (24 * SAMPLES_PER_HOUR)) as f64 / SAMPLES_PER_HOUR as f64;
                let diurnal =
                    config.diurnal_amplitude * (std::f64::consts::TAU * hour / 24.0 + phase).sin();
                let meso = config.meso_amplitude
                    * meso_scale
                    * (std::f64::consts::TAU * hour / 1.5 + phase * 3.0).sin();
                ar = config.noise_phi * ar + normal(&mut rng) * config.noise_sigma * volatility;
                if spike_left == 0 && rng.gen_bool(config.spike_prob) {
                    spike_left = config.spike_len;
                }
                let spike = if spike_left > 0 {
                    spike_left -= 1;
                    config.spike_height
                } else {
                    0.0
                };
                let u = (base + diurnal + meso + ar + spike).clamp(0.02, 1.0);
                if t % hold == 0 || spike > 0.0 {
                    held = u;
                }
                samples.push(held);
            }
            UsageSeries { samples }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_length_matches_config() {
        let cfg = SynthConfig {
            containers: 3,
            days: 2,
            ..Default::default()
        };
        let series = generate(&cfg);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.samples.len(), 2 * 24 * SAMPLES_PER_HOUR);
        }
    }

    #[test]
    fn usage_stays_in_bounds() {
        let series = generate(&SynthConfig {
            containers: 5,
            days: 3,
            ..Default::default()
        });
        for s in &series {
            for &u in &s.samples {
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn mean_idle_memory_is_roughly_a_quarter() {
        let series = generate(&SynthConfig::default());
        let total: f64 = series.iter().flat_map(|s| s.samples.iter()).sum();
        let count: usize = series.iter().map(|s| s.samples.len()).sum();
        let mean = total / count as f64;
        let idle = 1.0 - mean;
        assert!(
            (0.20..0.32).contains(&idle),
            "idle fraction {idle:.3} should approximate the trace's ~26 %"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SynthConfig {
            containers: 2,
            days: 1,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a[0].samples, b[0].samples);
        let c = generate(&SynthConfig { seed: 1, ..cfg });
        assert_ne!(a[0].samples, c[0].samples);
    }

    #[test]
    fn usage_fluctuates() {
        let series = generate(&SynthConfig {
            containers: 1,
            days: 1,
            ..Default::default()
        });
        let s = &series[0].samples;
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.05, "series should fluctuate: {min}..{max}");
    }
}
