//! Reading and writing memory-usage traces as CSV.
//!
//! The analysis pipeline ships with a synthetic trace generator, but the
//! same pipeline runs unchanged over real datacenter traces in the
//! ClusterData-style shape: one row per `(container, interval)` with the
//! container's average memory usage as a fraction of its limit.
//!
//! Format: a header line `container,interval,usage`, then one row per
//! 5-minute sample. Rows may arrive in any order; intervals must be
//! dense per container (0..n).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::synth::UsageSeries;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed row, with its 1-based line number.
    Malformed {
        /// Line number.
        line: usize,
        /// What was wrong.
        why: &'static str,
    },
    /// A container's intervals have gaps.
    Gap {
        /// Container identifier.
        container: u64,
        /// First missing interval index.
        missing: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceIoError::Malformed { line, why } => {
                write!(f, "malformed trace row at line {line}: {why}")
            }
            TraceIoError::Gap { container, missing } => {
                write!(f, "container {container} missing interval {missing}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes series to CSV text.
pub fn to_csv(series: &[UsageSeries]) -> String {
    let mut out = String::from("container,interval,usage\n");
    for (c, s) in series.iter().enumerate() {
        for (i, &u) in s.samples.iter().enumerate() {
            // Infallible: writing to a String cannot fail.
            let _ = writeln!(out, "{c},{i},{u:.6}");
        }
    }
    out
}

/// Parses CSV text into series.
///
/// # Errors
///
/// Fails on malformed rows or interval gaps.
pub fn from_csv(text: &str) -> Result<Vec<UsageSeries>, TraceIoError> {
    let mut per_container: BTreeMap<u64, BTreeMap<usize, f64>> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("container")) {
            continue;
        }
        let mut parts = line.split(',');
        let (Some(c), Some(i), Some(u)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(TraceIoError::Malformed {
                line: lineno,
                why: "expected three comma-separated fields",
            });
        };
        let c: u64 = c.trim().parse().map_err(|_| TraceIoError::Malformed {
            line: lineno,
            why: "container id is not an integer",
        })?;
        let i: usize = i.trim().parse().map_err(|_| TraceIoError::Malformed {
            line: lineno,
            why: "interval is not an integer",
        })?;
        let u: f64 = u.trim().parse().map_err(|_| TraceIoError::Malformed {
            line: lineno,
            why: "usage is not a number",
        })?;
        if !(0.0..=1.0).contains(&u) {
            return Err(TraceIoError::Malformed {
                line: lineno,
                why: "usage outside [0, 1]",
            });
        }
        per_container.entry(c).or_default().insert(i, u);
    }
    let mut out = Vec::with_capacity(per_container.len());
    for (container, samples) in per_container {
        let n = samples.len();
        let mut series = Vec::with_capacity(n);
        for i in 0..n {
            match samples.get(&i) {
                Some(&u) => series.push(u),
                None => {
                    return Err(TraceIoError::Gap {
                        container,
                        missing: i,
                    })
                }
            }
        }
        out.push(UsageSeries { samples: series });
    }
    Ok(out)
}

/// Writes series to a CSV file.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_csv(path: &Path, series: &[UsageSeries]) -> Result<(), TraceIoError> {
    std::fs::write(path, to_csv(series))?;
    Ok(())
}

/// Reads series from a CSV file.
///
/// # Errors
///
/// Propagates filesystem and parse failures.
pub fn read_csv(path: &Path) -> Result<Vec<UsageSeries>, TraceIoError> {
    from_csv(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn csv_roundtrip() {
        let series = generate(&SynthConfig {
            containers: 3,
            days: 1,
            ..Default::default()
        });
        let text = to_csv(&series);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.len(), series.len());
        for (a, b) in series.iter().zip(back.iter()) {
            assert_eq!(a.samples.len(), b.samples.len());
            for (x, y) in a.samples.iter().zip(b.samples.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let series = generate(&SynthConfig {
            containers: 2,
            days: 1,
            ..Default::default()
        });
        let dir = std::env::temp_dir().join("pado-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        write_csv(&path, &series).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unordered_rows_are_accepted() {
        let text = "container,interval,usage\n0,1,0.5\n0,0,0.25\n";
        let s = from_csv(text).unwrap();
        assert_eq!(s[0].samples, vec![0.25, 0.5]);
    }

    #[test]
    fn gaps_are_rejected() {
        let text = "container,interval,usage\n0,0,0.5\n0,2,0.5\n";
        assert!(matches!(
            from_csv(text),
            Err(TraceIoError::Gap {
                container: 0,
                missing: 1
            })
        ));
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        for (text, _why) in [
            ("0,0\n", "fields"),
            ("x,0,0.5\n", "container"),
            ("0,y,0.5\n", "interval"),
            ("0,0,z\n", "usage"),
            ("0,0,1.5\n", "range"),
        ] {
            assert!(
                matches!(from_csv(text), Err(TraceIoError::Malformed { line: 1, .. })),
                "{text:?}"
            );
        }
    }

    #[test]
    fn analysis_runs_on_parsed_trace() {
        let series = generate(&SynthConfig {
            containers: 4,
            days: 2,
            ..Default::default()
        });
        let parsed = from_csv(&to_csv(&series)).unwrap();
        let a = crate::margin::analyze(&parsed, 0.01);
        assert!(!a.lifetimes_min.is_empty());
    }
}
