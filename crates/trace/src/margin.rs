//! Safety-margin analysis of transient container lifetimes (§2.1).
//!
//! Following the Borg-style technique the paper applies: a transient
//! container is set up with the unused memory of an LC container, leaving
//! a *buffer* of `memory × safety-margin` untouched. When LC usage
//! decreases, the transient container is reallocated the newly idle
//! memory (it tracks the running minimum of LC usage). When LC usage
//! grows past the buffer — into memory the transient container occupies —
//! the transient container is evicted. A new transient container is set
//! up as soon as idle memory beyond the buffer reappears.

use crate::bspline::refine;
use crate::synth::UsageSeries;

/// Result of analyzing one safety margin across a whole trace.
#[derive(Debug, Clone)]
pub struct MarginAnalysis {
    /// The safety margin analyzed (fraction of LC memory, e.g. `0.001`).
    pub margin: f64,
    /// Observed transient-container lifetimes, minutes.
    pub lifetimes_min: Vec<u64>,
    /// Time-averaged memory collected for transient containers, as a
    /// fraction of total LC memory (Table 2).
    pub collected_fraction: f64,
    /// Time-averaged idle memory fraction (Table 2's baseline).
    pub baseline_idle_fraction: f64,
}

impl MarginAnalysis {
    /// The `q`-quantile of the observed lifetimes, minutes.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.lifetimes_min.is_empty() {
            return 0;
        }
        let mut sorted = self.lifetimes_min.clone();
        sorted.sort_unstable();
        let pos = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[pos]
    }
}

/// Analyzes one container's refined 1-minute usage series, appending
/// lifetimes (in minutes) and accumulating collected-memory statistics.
fn analyze_series(
    usage_1min: &[f64],
    margin: f64,
    lifetimes: &mut Vec<u64>,
    collected_sum: &mut f64,
    idle_sum: &mut f64,
    samples: &mut usize,
) {
    let buffer = margin;
    // Running minimum of LC usage since the current transient container
    // was allocated; `None` while no container fits.
    let mut alloc: Option<(usize, f64)> = None;
    for (t, &u) in usage_1min.iter().enumerate() {
        let u = u.clamp(0.0, 1.0);
        *idle_sum += 1.0 - u;
        *samples += 1;
        match alloc {
            None => {
                // Allocate when there is idle memory beyond the buffer.
                if 1.0 - u > buffer {
                    alloc = Some((t, u));
                    *collected_sum += 1.0 - u - buffer;
                }
            }
            Some((start, low)) => {
                let low = low.min(u);
                // The transient container occupies `1 - low - buffer`;
                // eviction when LC usage grows into it.
                if u > low + buffer {
                    lifetimes.push((t - start) as u64);
                    alloc = None;
                    // Immediately try to reallocate at the new level.
                    if 1.0 - u > buffer {
                        alloc = Some((t, u));
                        *collected_sum += 1.0 - u - buffer;
                    }
                } else {
                    alloc = Some((start, low));
                    *collected_sum += 1.0 - low - buffer;
                }
            }
        }
    }
    // A container alive at trace end contributes a (censored) lifetime.
    if let Some((start, _)) = alloc {
        if usage_1min.len() > start + 1 {
            lifetimes.push((usage_1min.len() - 1 - start) as u64);
        }
    }
}

/// Runs the full analysis for one safety margin: refine every 5-minute
/// series to 1-minute resolution with the B-spline, then extract
/// transient container lifetimes and collected-memory fractions.
pub fn analyze(series: &[UsageSeries], margin: f64) -> MarginAnalysis {
    let mut lifetimes = Vec::new();
    let mut collected_sum = 0.0;
    let mut idle_sum = 0.0;
    let mut samples = 0usize;
    for s in series {
        let refined = refine(&s.samples, 5);
        analyze_series(
            &refined,
            margin,
            &mut lifetimes,
            &mut collected_sum,
            &mut idle_sum,
            &mut samples,
        );
    }
    let n = samples.max(1) as f64;
    MarginAnalysis {
        margin,
        lifetimes_min: lifetimes,
        collected_fraction: collected_sum / n,
        baseline_idle_fraction: idle_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_series(value: f64, len: usize) -> UsageSeries {
        UsageSeries {
            samples: vec![value; len],
        }
    }

    #[test]
    fn flat_usage_never_evicts() {
        let series = vec![flat_series(0.7, 100)];
        let a = analyze(&series, 0.01);
        // Only the censored end-of-trace lifetime is recorded.
        assert_eq!(a.lifetimes_min.len(), 1);
        assert_eq!(a.lifetimes_min[0] as usize, (100 - 1) * 5);
    }

    #[test]
    fn usage_step_evicts_once() {
        // 0.6 for 50 samples, then a step to 0.8 — one eviction, then a
        // stable container to trace end.
        let mut samples = vec![0.6; 50];
        samples.extend(vec![0.8; 50]);
        let series = vec![UsageSeries { samples }];
        let a = analyze(&series, 0.05);
        // The B-spline smooths the step into a ramp, so the 0.2 rise
        // produces a handful of evict-reallocate cycles, plus the final
        // censored container: at least one eviction, and the first
        // container's lifetime spans the whole flat prefix.
        assert!(a.lifetimes_min.len() >= 2);
        assert!(
            a.lifetimes_min[0] >= 200,
            "first lifetime spans the flat prefix"
        );
    }

    #[test]
    fn smaller_margin_gives_shorter_lifetimes() {
        let series = crate::synth::generate(&crate::synth::SynthConfig {
            containers: 20,
            days: 7,
            ..Default::default()
        });
        let tight = analyze(&series, 0.001);
        let loose = analyze(&series, 0.05);
        assert!(
            tight.percentile(0.5) < loose.percentile(0.5),
            "median lifetimes: tight {} !< loose {}",
            tight.percentile(0.5),
            loose.percentile(0.5)
        );
        assert!(tight.lifetimes_min.len() > loose.lifetimes_min.len());
    }

    #[test]
    fn collected_memory_decreases_with_margin() {
        let series = crate::synth::generate(&crate::synth::SynthConfig {
            containers: 10,
            days: 5,
            ..Default::default()
        });
        let a = analyze(&series, 0.001);
        let b = analyze(&series, 0.05);
        assert!(a.collected_fraction > b.collected_fraction);
        assert!(a.collected_fraction <= a.baseline_idle_fraction + 1e-9);
    }

    #[test]
    fn percentile_handles_empty() {
        let a = MarginAnalysis {
            margin: 0.01,
            lifetimes_min: Vec::new(),
            collected_fraction: 0.0,
            baseline_idle_fraction: 0.0,
        };
        assert_eq!(a.percentile(0.5), 0);
    }

    #[test]
    fn running_minimum_grows_container() {
        // Usage decreasing: the transient container grows; collected
        // memory should exceed what the initial level allowed.
        let samples: Vec<f64> = (0..50).map(|i| 0.9 - i as f64 * 0.01).collect();
        let series = vec![UsageSeries { samples }];
        let a = analyze(&series, 0.01);
        assert!(a.collected_fraction > 0.05);
        assert_eq!(a.lifetimes_min.len(), 1, "no eviction on decreasing usage");
    }
}
