//! Transient-container lifetime analysis (§2.1 of the Pado paper).
//!
//! The paper derives transient container lifetime CDFs (Figure 1),
//! lifetime percentiles (Table 1), and collected-idle-memory fractions
//! (Table 2) from a Google datacenter trace. Lacking that proprietary
//! trace, this crate generates synthetic latency-critical memory-usage
//! series with the same salient structure and runs the *same analysis
//! pipeline*: cubic B-spline refinement of 5-minute samples to 1-minute
//! resolution, then Borg-style safety-margin eviction detection.
//!
//! The resulting empirical lifetime distributions drive the eviction
//! process of the simulated cluster in `pado-simcluster`.
//!
//! # Examples
//!
//! ```
//! use pado_trace::{analyze, generate, lifetime_row, SynthConfig};
//!
//! let series = generate(&SynthConfig { containers: 10, days: 3, ..Default::default() });
//! let high = analyze(&series, 0.001); // 0.1 % safety margin.
//! let low = analyze(&series, 0.05); // 5 % safety margin.
//! let row = lifetime_row(&high);
//! assert!(row.p10 <= row.p50 && row.p50 <= row.p90);
//! assert!(high.percentile(0.5) <= low.percentile(0.5));
//! ```
#![warn(missing_docs)]

pub mod bspline;
pub mod cdf;
pub mod io;
pub mod margin;
pub mod synth;

pub use bspline::{refine, BSpline};
pub use cdf::{lifetime_row, Cdf, LifetimeRow};
pub use io::{from_csv, read_csv, to_csv, write_csv, TraceIoError};
pub use margin::{analyze, MarginAnalysis};
pub use synth::{generate, SynthConfig, UsageSeries};

/// The paper's three safety margins: 0.1 % (high eviction), 1 % (medium),
/// and 5 % (low).
pub const PAPER_MARGINS: [f64; 3] = [0.001, 0.01, 0.05];
