//! Uniform cubic B-spline curve fitting.
//!
//! The paper refines 5-minute-interval memory usage records into 1-minute
//! records "by applying the B-spline function … commonly used for
//! curve-fitting of experimental data" (§2.1, citing de Boor). This module
//! implements the uniform cubic B-spline with the coarse samples as
//! control points (a smoothing approximation) and end-point clamping via
//! repeated boundary control points.

/// Evaluates the four cubic B-spline basis functions at local parameter
/// `u` in `[0, 1)`.
fn basis(u: f64) -> [f64; 4] {
    let u2 = u * u;
    let u3 = u2 * u;
    [
        (1.0 - u).powi(3) / 6.0,
        (3.0 * u3 - 6.0 * u2 + 4.0) / 6.0,
        (-3.0 * u3 + 3.0 * u2 + 3.0 * u + 1.0) / 6.0,
        u3 / 6.0,
    ]
}

/// A fitted uniform cubic B-spline over evenly spaced samples.
#[derive(Debug, Clone)]
pub struct BSpline {
    control: Vec<f64>,
}

impl BSpline {
    /// Fits a spline using the samples as control points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are given.
    pub fn fit(samples: &[f64]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples to fit");
        BSpline {
            control: samples.to_vec(),
        }
    }

    /// Evaluates the spline at parameter `t` in sample-index units
    /// (`0.0..=(n-1)`), clamping outside the range.
    pub fn eval(&self, t: f64) -> f64 {
        let n = self.control.len();
        let t = t.clamp(0.0, (n - 1) as f64);
        let seg = (t.floor() as usize).min(n - 2);
        let u = t - seg as f64;
        let b = basis(u);
        // Clamp boundary control points so the curve stays anchored to
        // the data range at the ends.
        let p = |i: isize| -> f64 {
            let idx = i.clamp(0, (n - 1) as isize) as usize;
            self.control[idx]
        };
        let s = seg as isize;
        b[0] * p(s - 1) + b[1] * p(s) + b[2] * p(s + 1) + b[3] * p(s + 2)
    }

    /// Resamples the curve at `factor`× finer resolution: for `n` input
    /// samples at interval Δ, produces `(n-1)*factor + 1` samples at
    /// interval Δ/factor (the paper's 5-minute → 1-minute refinement uses
    /// `factor = 5`).
    pub fn resample(&self, factor: usize) -> Vec<f64> {
        let factor = factor.max(1);
        let n = self.control.len();
        let mut out = Vec::with_capacity((n - 1) * factor + 1);
        for i in 0..(n - 1) * factor + 1 {
            out.push(self.eval(i as f64 / factor as f64));
        }
        out
    }
}

/// Convenience: fit and resample in one call.
pub fn refine(samples: &[f64], factor: usize) -> Vec<f64> {
    BSpline::fit(samples).resample(factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_partitions_unity() {
        for k in 0..10 {
            let u = k as f64 / 10.0;
            let b = basis(u);
            let sum: f64 = b.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "u={u}: sum={sum}");
        }
    }

    #[test]
    fn constant_data_stays_constant() {
        let s = BSpline::fit(&[3.0; 8]);
        for k in 0..70 {
            let t = k as f64 / 10.0;
            assert!((s.eval(t) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_data_stays_linear_in_interior() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let s = BSpline::fit(&data);
        // Uniform cubic B-splines reproduce linear functions exactly in
        // the interior (partition of unity + linear precision).
        for k in 20..70 {
            let t = k as f64 / 10.0;
            assert!((s.eval(t) - t).abs() < 1e-9, "t={t}: {}", s.eval(t));
        }
    }

    #[test]
    fn smoothing_stays_within_data_hull() {
        let data = vec![0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let s = BSpline::fit(&data);
        for k in 0..=50 {
            let t = k as f64 / 10.0;
            let v = s.eval(t);
            assert!(
                (0.0..=10.0).contains(&v),
                "convex-hull property violated at t={t}: {v}"
            );
        }
    }

    #[test]
    fn resample_counts_match() {
        let refined = refine(&[1.0, 2.0, 3.0, 4.0], 5);
        assert_eq!(refined.len(), 3 * 5 + 1);
    }

    #[test]
    fn eval_clamps_out_of_range() {
        let s = BSpline::fit(&[1.0, 2.0, 3.0]);
        assert_eq!(s.eval(-5.0), s.eval(0.0));
        assert_eq!(s.eval(99.0), s.eval(2.0));
    }

    #[test]
    fn resample_smooths_toward_local_mean() {
        // A spike gets attenuated by the smoothing approximation.
        let data = vec![0.0, 0.0, 10.0, 0.0, 0.0];
        let refined = refine(&data, 5);
        let peak = refined.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            peak < 10.0,
            "peak {peak} should be smoothed below the spike"
        );
        assert!(peak > 3.0, "peak {peak} should still reflect the spike");
    }
}
