//! Property tests of the simulated engines: completion, accounting
//! invariants, and determinism across arbitrary seeds and eviction rates.

use proptest::prelude::*;

use pado_dag::{CombineFn, LogicalDag, Pipeline, SourceFn};
use pado_engines::{simulate, CostModel, Mode, OpCost, SimConfig};
use pado_simcluster::{LifetimeDist, SEC};

fn small_job(maps: usize, reduces: usize) -> (LogicalDag, CostModel) {
    let p = Pipeline::new();
    let read = p.read("Read", maps, SourceFn::from_vec(vec![]));
    let red = read
        .combine_per_key("Reduce", CombineFn::sum_i64())
        .with_parallelism(reduces);
    let mut model = CostModel::new();
    model
        .set(
            read.op_id(),
            OpCost {
                compute_us: 1_500_000,
                read_store_bytes: 16e6,
                output_bytes: 8e6,
            },
        )
        .set(
            red.op_id(),
            OpCost {
                compute_us: 500_000,
                read_store_bytes: 0.0,
                output_bytes: 1e6,
            },
        );
    (p.build().unwrap(), model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine completes small jobs for arbitrary seeds and eviction
    /// pressure, with consistent launch accounting.
    #[test]
    fn engines_complete_with_consistent_accounting(
        seed in 0u64..1000,
        mean_secs in 20u64..600,
        maps in 4usize..24,
        mode_sel in 0usize..3,
    ) {
        let (dag, model) = small_job(maps, 4);
        let mode = [Mode::Spark, Mode::SparkCkpt, Mode::Pado][mode_sel];
        let config = SimConfig {
            n_transient: 4,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (mean_secs * SEC) as f64,
            },
            seed,
            ..SimConfig::default()
        };
        let m = simulate(mode, &dag, &model, config).unwrap();
        prop_assert!(m.jct_us > 0);
        prop_assert_eq!(m.tasks_launched, m.original_tasks + m.relaunched_tasks);
        prop_assert!(m.bytes_transferred >= 0.0);
        if mode != Mode::SparkCkpt {
            prop_assert_eq!(m.bytes_checkpointed, 0.0);
        }
        if mode != Mode::Pado {
            prop_assert_eq!(m.bytes_pushed, 0.0);
        }
    }

    /// Identical configuration implies identical results (the simulator
    /// is fully deterministic).
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000) {
        let (dag, model) = small_job(8, 3);
        let config = SimConfig {
            n_transient: 3,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (60 * SEC) as f64,
            },
            seed,
            ..SimConfig::default()
        };
        let a = simulate(Mode::Pado, &dag, &model, config.clone()).unwrap();
        let b = simulate(Mode::Pado, &dag, &model, config).unwrap();
        prop_assert_eq!(a.jct_us, b.jct_us);
        prop_assert_eq!(a.tasks_launched, b.tasks_launched);
        prop_assert_eq!(a.evictions, b.evictions);
        prop_assert!((a.bytes_transferred - b.bytes_transferred).abs() < 1.0);
    }

    /// Without evictions, no engine ever relaunches a task.
    #[test]
    fn no_evictions_no_relaunches(maps in 4usize..32, mode_sel in 0usize..3) {
        let (dag, model) = small_job(maps, 4);
        let mode = [Mode::Spark, Mode::SparkCkpt, Mode::Pado][mode_sel];
        let m = simulate(
            mode,
            &dag,
            &model,
            SimConfig {
                n_transient: 4,
                n_reserved: 2,
                ..SimConfig::default()
            },
        )
        .unwrap();
        prop_assert_eq!(m.relaunched_tasks, 0);
        prop_assert_eq!(m.evictions, 0);
    }
}

/// Reproduces Figure 2 of the paper: a Map-Reduce job on 3 transient + 1
/// reserved containers where the transient containers are evicted while
/// the Reduce operator runs. Spark must recompute lost map outputs (the
/// critical chain), Spark-checkpoint only relaunches in-flight reduce
/// work, and Pado relaunches nothing — the map outputs were already
/// pushed to the reserved container.
#[test]
fn figure2_eviction_during_reduce() {
    let p = Pipeline::new();
    let read = p.read("Map", 6, SourceFn::from_vec(vec![]));
    let red = read
        .combine_per_key("Reduce", CombineFn::sum_i64())
        .with_parallelism(3);
    let mut model = CostModel::new();
    model
        .set(
            read.op_id(),
            OpCost {
                compute_us: 10 * SEC,
                read_store_bytes: 8e6,
                output_bytes: 8e6,
            },
        )
        .set(
            red.op_id(),
            OpCost {
                compute_us: 60 * SEC,
                read_store_bytes: 0.0,
                output_bytes: 1e6,
            },
        );
    let dag = p.build().unwrap();

    // Maps finish within ~25s; reduces run for ~60s after that. Evict all
    // three transient containers at t = 60s, squarely inside the reduce
    // phase.
    let config = SimConfig {
        n_transient: 3,
        n_reserved: 1,
        scripted_evictions: vec![(60 * SEC, 0), (60 * SEC, 1), (60 * SEC, 2)],
        ..SimConfig::default()
    };

    let spark = simulate(Mode::Spark, &dag, &model, config.clone()).unwrap();
    let ckpt = simulate(Mode::SparkCkpt, &dag, &model, config.clone()).unwrap();
    let pado = simulate(Mode::Pado, &dag, &model, config).unwrap();

    // Pado: reduces run on the reserved container with pushed inputs; the
    // evictions cost nothing.
    assert_eq!(pado.relaunched_tasks, 0, "pado relaunches nothing");
    // Spark-checkpoint relaunches the reduce work that was in flight on
    // the evicted containers, but no maps (they were checkpointed).
    assert!(ckpt.relaunched_tasks > 0, "ckpt redoes in-flight reduces");
    // Spark additionally recomputes the lost map outputs: strictly more
    // relaunches than checkpoint-enabled Spark.
    assert!(
        spark.relaunched_tasks > ckpt.relaunched_tasks,
        "spark {} vs ckpt {}",
        spark.relaunched_tasks,
        ckpt.relaunched_tasks
    );
    assert!(pado.jct_us <= ckpt.jct_us && ckpt.jct_us <= spark.jct_us);
}
