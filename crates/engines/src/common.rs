//! Shared infrastructure for the simulated execution engines.
//!
//! All three engines (Pado, Spark, Spark-checkpoint) execute the *same*
//! physical plan — produced by the real Pado compiler — over the same
//! simulated cluster, differing only in placement policy, data movement
//! (push vs. pull vs. checkpoint), and recovery semantics. This module
//! holds the cost annotations, slot accounting, and run metrics they
//! share.

use std::collections::{BTreeMap, HashMap};

use pado_core::compiler::{FopId, PhysicalPlan};
use pado_dag::OpId;
use pado_simcluster::{ContainerId, SimTime};

/// Cost annotations for one logical operator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCost {
    /// Compute time per task, microseconds.
    pub compute_us: u64,
    /// Bytes each task reads from the external store (`Read` sources).
    pub read_store_bytes: f64,
    /// Bytes each task outputs.
    pub output_bytes: f64,
}

/// Workload cost model: per-operator costs plus partial-aggregation
/// factors for edges into combine operators.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    per_op: HashMap<OpId, OpCost>,
    /// Fraction of bytes actually pushed along a combine-bound edge after
    /// transient-side partial aggregation, keyed by the *consumer*
    /// logical operator (§3.2.7). `1.0` means no reduction.
    preagg_factor: HashMap<OpId, f64>,
}

impl CostModel {
    /// Creates an empty model (zero costs).
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Sets the cost of a logical operator.
    pub fn set(&mut self, op: OpId, cost: OpCost) -> &mut Self {
        self.per_op.insert(op, cost);
        self
    }

    /// Sets the partial-aggregation factor of edges into `consumer`.
    pub fn set_preagg(&mut self, consumer: OpId, factor: f64) -> &mut Self {
        self.preagg_factor.insert(consumer, factor.clamp(0.0, 1.0));
        self
    }

    /// The cost of a logical operator (zero if unset).
    pub fn of(&self, op: OpId) -> OpCost {
        self.per_op.get(&op).copied().unwrap_or_default()
    }

    /// The partial-aggregation factor for edges into `consumer`.
    pub fn preagg_of(&self, consumer: OpId) -> Option<f64> {
        self.preagg_factor.get(&consumer).copied()
    }
}

/// Per-fop costs derived from a [`CostModel`] and a physical plan: a fused
/// chain's compute time is the sum over its members; its read volume is
/// the head's; its output volume is the tail's.
#[derive(Debug, Clone)]
pub struct FopCosts {
    /// Compute time per task, microseconds.
    pub compute_us: Vec<u64>,
    /// Store bytes read per task.
    pub read_bytes: Vec<f64>,
    /// Output bytes per task.
    pub out_bytes: Vec<f64>,
    /// Partial-aggregation factor per fop (for its *output* edges), when
    /// all consumers are the same combine operator.
    pub preagg: Vec<Option<f64>>,
}

impl FopCosts {
    /// Derives per-fop costs.
    pub fn derive(plan: &PhysicalPlan, model: &CostModel) -> Self {
        let n = plan.fops.len();
        let mut compute_us = vec![0u64; n];
        let mut read_bytes = vec![0.0; n];
        let mut out_bytes = vec![0.0; n];
        let mut preagg = vec![None; n];
        for fop in &plan.fops {
            compute_us[fop.id] = fop.chain.iter().map(|&op| model.of(op).compute_us).sum();
            read_bytes[fop.id] = model.of(fop.head()).read_store_bytes;
            out_bytes[fop.id] = model.of(fop.tail()).output_bytes;
            let consumer_factors: Vec<Option<f64>> = plan
                .out_edges(fop.id)
                .iter()
                .map(|e| model.preagg_of(plan.fops[e.dst].head()))
                .collect();
            if !consumer_factors.is_empty() && consumer_factors.iter().all(|f| f.is_some()) {
                preagg[fop.id] = consumer_factors[0];
            }
        }
        FopCosts {
            compute_us,
            read_bytes,
            out_bytes,
            preagg,
        }
    }
}

/// Flattened task identifier across a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskRef {
    /// The fused operator.
    pub fop: FopId,
    /// The task index within it.
    pub index: usize,
}

/// Slot accounting over containers.
#[derive(Debug, Default)]
pub struct SlotPool {
    free: BTreeMap<ContainerId, usize>,
    rr: usize,
}

impl SlotPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        SlotPool::default()
    }

    /// Registers a container with `slots` free slots.
    pub fn add(&mut self, c: ContainerId, slots: usize) {
        self.free.insert(c, slots);
    }

    /// Removes a container (evicted) and forgets its slots.
    pub fn remove(&mut self, c: ContainerId) {
        self.free.remove(&c);
    }

    /// Acquires a slot round-robin; returns the chosen container.
    pub fn acquire_any(&mut self) -> Option<ContainerId> {
        self.acquire_where(|_| true)
    }

    /// Acquires a slot round-robin among containers matching `pred`.
    pub fn acquire_where<F: Fn(ContainerId) -> bool>(&mut self, pred: F) -> Option<ContainerId> {
        let with_free: Vec<ContainerId> = self
            .free
            .iter()
            .filter(|(&c, &n)| n > 0 && pred(c))
            .map(|(&c, _)| c)
            .collect();
        if with_free.is_empty() {
            return None;
        }
        let c = with_free[self.rr % with_free.len()];
        self.rr += 1;
        *self.free.get_mut(&c).expect("candidate exists") -= 1;
        Some(c)
    }

    /// Acquires a slot on a specific container.
    pub fn acquire_on(&mut self, c: ContainerId) -> bool {
        match self.free.get_mut(&c) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Releases a slot on a container (no-op if the container is gone).
    pub fn release(&mut self, c: ContainerId) {
        if let Some(n) = self.free.get_mut(&c) {
            *n += 1;
        }
    }

    /// Whether any container has a free slot.
    pub fn any_free(&self) -> bool {
        self.free.values().any(|&n| n > 0)
    }

    /// Total free slots over containers matching `pred`.
    pub fn free_slots_where<F: Fn(ContainerId) -> bool>(&self, pred: F) -> usize {
        self.free
            .iter()
            .filter(|(&c, _)| pred(c))
            .map(|(_, &n)| n)
            .sum()
    }

    /// Free slots on one container.
    pub fn free_on(&self, c: ContainerId) -> usize {
        self.free.get(&c).copied().unwrap_or(0)
    }

    /// Containers currently registered.
    pub fn containers(&self) -> Vec<ContainerId> {
        self.free.keys().copied().collect()
    }
}

/// Metrics of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Job completion time, microseconds of virtual time.
    pub jct_us: SimTime,
    /// Tasks in the plan.
    pub original_tasks: usize,
    /// Task launches, including relaunches.
    pub tasks_launched: usize,
    /// Launches beyond first attempts.
    pub relaunched_tasks: usize,
    /// Evictions that occurred during the run.
    pub evictions: usize,
    /// Bytes moved over the network to completion.
    pub bytes_transferred: f64,
    /// Bytes written to stable storage (Spark-checkpoint only).
    pub bytes_checkpointed: f64,
    /// Bytes pushed from transient to reserved executors (Pado only).
    pub bytes_pushed: f64,
}

// Note: `RunMetrics` deliberately carries *no* mirror of the runtime's
// failure/transport/memory counters (task failures, speculation, message
// drops, heartbeats, spills, deferred pushes, store occupancy). The
// simulated engines model none of those — their executors have infinite
// memory — and the real runtime now derives every such counter from its
// event journal (`EventJournal::derive_metrics`), so hand-mirrored zero
// fields here could only drift from the source of truth.

impl RunMetrics {
    /// Job completion time in minutes.
    pub fn jct_minutes(&self) -> f64 {
        self.jct_us as f64 / 60_000_000.0
    }

    /// Job completion time in seconds (the bench bins report wall-clock
    /// runs in seconds, so this keeps predicted-vs-measured comparable).
    pub fn jct_secs(&self) -> f64 {
        self.jct_us as f64 / 1_000_000.0
    }

    /// Relaunched-to-original task ratio.
    pub fn relaunch_ratio(&self) -> f64 {
        if self.original_tasks == 0 {
            0.0
        } else {
            self.relaunched_tasks as f64 / self.original_tasks as f64
        }
    }
}

/// An error from a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained before the job completed (a scheduling
    /// deadlock — indicates an engine bug or an impossible cluster).
    Stalled {
        /// Tasks completed when the simulation stalled.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The job exceeded the simulation time limit.
    TimedOut,
    /// The dataflow program failed to compile.
    Compile(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled { completed, total } => {
                write!(f, "simulation stalled at {completed}/{total} tasks")
            }
            SimError::TimedOut => write!(f, "simulation exceeded its time limit"),
            SimError::Compile(e) => write!(f, "compilation failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_pool_round_robins() {
        let mut p = SlotPool::new();
        p.add(1, 1);
        p.add(2, 1);
        let a = p.acquire_any().unwrap();
        let b = p.acquire_any().unwrap();
        assert_ne!(a, b);
        assert!(p.acquire_any().is_none());
        p.release(a);
        assert_eq!(p.acquire_any(), Some(a));
    }

    #[test]
    fn slot_pool_specific_acquire() {
        let mut p = SlotPool::new();
        p.add(5, 2);
        assert!(p.acquire_on(5));
        assert!(p.acquire_on(5));
        assert!(!p.acquire_on(5));
        assert!(!p.acquire_on(9));
        p.release(5);
        assert!(p.acquire_on(5));
    }

    #[test]
    fn removed_container_release_is_noop() {
        let mut p = SlotPool::new();
        p.add(1, 1);
        assert!(p.acquire_on(1));
        p.remove(1);
        p.release(1);
        assert!(!p.any_free());
    }

    #[test]
    fn cost_model_defaults_to_zero() {
        let m = CostModel::new();
        assert_eq!(m.of(3).compute_us, 0);
        assert!(m.preagg_of(3).is_none());
    }

    #[test]
    fn run_metrics_conversions() {
        let m = RunMetrics {
            jct_us: 120_000_000,
            original_tasks: 4,
            relaunched_tasks: 1,
            ..Default::default()
        };
        assert!((m.jct_minutes() - 2.0).abs() < 1e-9);
        assert!((m.relaunch_ratio() - 0.25).abs() < 1e-9);
    }
}

#[cfg(test)]
mod cost_tests {
    use super::*;
    use pado_core::compiler::compile;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn};

    #[test]
    fn fop_costs_sum_over_fused_chains() {
        let p = Pipeline::new();
        let read = p.read("R", 4, SourceFn::from_vec(vec![]));
        let map = read.par_do("M", ParDoFn::per_element(|v, e| e(v.clone())));
        let red = map.combine_per_key("C", CombineFn::sum_i64());
        let mut model = CostModel::new();
        model
            .set(
                read.op_id(),
                OpCost {
                    compute_us: 10,
                    read_store_bytes: 100.0,
                    output_bytes: 50.0,
                },
            )
            .set(
                map.op_id(),
                OpCost {
                    compute_us: 7,
                    read_store_bytes: 0.0,
                    output_bytes: 20.0,
                },
            )
            .set_preagg(red.op_id(), 0.5);
        let dag = p.build().unwrap();
        let plan = compile(&dag).unwrap();
        let costs = FopCosts::derive(&plan, &model);
        // Fop 0 is the fused Read->Map chain.
        assert_eq!(costs.compute_us[0], 17, "chain compute is the sum");
        assert_eq!(costs.read_bytes[0], 100.0, "head's store read");
        assert_eq!(costs.out_bytes[0], 20.0, "tail's output");
        assert_eq!(costs.preagg[0], Some(0.5), "combine-bound edge factor");
        assert_eq!(costs.preagg[1], None, "the combine itself has no factor");
    }

    #[test]
    fn mixed_consumers_disable_preagg() {
        let p = Pipeline::new();
        let read = p.read("R", 4, SourceFn::from_vec(vec![]));
        let agg = read.aggregate("A", CombineFn::sum_i64());
        read.group_by_key("G");
        let mut model = CostModel::new();
        model.set_preagg(agg.op_id(), 0.3);
        let dag = p.build().unwrap();
        let plan = compile(&dag).unwrap();
        let costs = FopCosts::derive(&plan, &model);
        // Read is instantiated once per consuming stage: the instance
        // feeding the combine pre-aggregates, the one feeding the
        // group-by-key does not.
        let factors: Vec<Option<f64>> = plan
            .fops
            .iter()
            .filter(|f| f.chain.contains(&0))
            .map(|f| costs.preagg[f.id])
            .collect();
        assert_eq!(factors.len(), 2);
        assert!(factors.contains(&Some(0.3)));
        assert!(factors.contains(&None));
    }
}
