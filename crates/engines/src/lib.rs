//! Simulated execution engines over the datacenter simulator.
//!
//! Reproduces the paper's evaluation setup (§5.1.2): three engines — Pado,
//! Spark 2.0.0, and Flint-style checkpoint-enabled Spark — run the same
//! workloads on the same simulated cluster of transient and reserved
//! containers. All three execute the physical plan produced by the real
//! Pado compiler; they differ in placement policy, data movement (push
//! with commit vs. pull vs. checkpoint), and recovery semantics.
//!
//! # Examples
//!
//! ```
//! use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};
//! use pado_engines::{simulate, CostModel, Mode, OpCost, SimConfig};
//!
//! let p = Pipeline::new();
//! let read = p.read("Read", 8, SourceFn::from_vec(vec![]));
//! let map = read.par_do("Map", ParDoFn::per_element(|v, e| e(v.clone())));
//! let red = map.combine_per_key("Reduce", CombineFn::sum_i64());
//! let mut model = CostModel::new();
//! model
//!     .set(read.op_id(), OpCost { compute_us: 1_000_000, read_store_bytes: 64e6, output_bytes: 16e6 })
//!     .set(red.op_id(), OpCost { compute_us: 500_000, read_store_bytes: 0.0, output_bytes: 1e6 });
//! let dag = p.build().unwrap();
//! let m = simulate(Mode::Pado, &dag, &model, SimConfig::default()).unwrap();
//! assert!(m.jct_us > 0);
//! assert_eq!(m.relaunched_tasks, 0); // No evictions configured.
//! ```
#![warn(missing_docs)]

pub mod common;
pub mod engine;

pub use common::{CostModel, FopCosts, OpCost, RunMetrics, SimError, SlotPool, TaskRef};
pub use engine::{Ev, Mode, SimConfig, SimEngine};

use pado_dag::LogicalDag;

/// Compiles a dataflow program and simulates one engine run.
///
/// # Errors
///
/// Propagates compilation failures and simulation stalls/timeouts.
pub fn simulate(
    mode: Mode,
    dag: &LogicalDag,
    model: &CostModel,
    config: SimConfig,
) -> Result<RunMetrics, SimError> {
    let plan = pado_core::compiler::compile(dag).map_err(|e| SimError::Compile(e.to_string()))?;
    SimEngine::new(mode, dag, plan, model, config).run()
}
