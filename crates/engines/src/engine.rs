//! The unified simulation engine.
//!
//! All three evaluated engines execute the same compiled physical plan on
//! the same simulated cluster; they differ in three policies, captured by
//! [`Mode`]:
//!
//! - **Spark** (§5.1.2): executors on transient *and* reserved containers;
//!   pull-based shuffles from producer-local outputs; driver-side global
//!   aggregation on the master container; lineage recovery — a lost
//!   output is recomputed on demand, which cascades into critical chains
//!   under frequent evictions.
//! - **Spark-checkpoint** (Flint-style): executors on transient
//!   containers only; every task output is asynchronously checkpointed to
//!   stable storage served by the reserved containers; consumers pull
//!   from stable storage; recovery restarts from the last checkpoint.
//! - **Pado** (§3.2): placement from the Pado compiler; reserved receiver
//!   tasks are pre-assigned so transient task outputs are pushed to their
//!   consumers' reserved containers the moment they complete; an eviction
//!   only relaunches uncommitted tasks of the running stage; combine-bound
//!   outputs are partially aggregated before the push.

use std::collections::{HashMap, HashSet};

use pado_core::compiler::{FopId, InputSlot, PhysicalPlan, Placement};
use pado_core::runtime::master::required_src_indices;
use pado_dag::{DepType, LogicalDag, OperatorKind, SourceKind};
use pado_simcluster::{Cluster, ContainerId, Event, Kind, LifetimeDist, NodeSpec};

use crate::common::{CostModel, FopCosts, RunMetrics, SimError, SlotPool};

/// Which engine's policies to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain Spark 2.0.0.
    Spark,
    /// Flint-style checkpoint-enabled Spark.
    SparkCkpt,
    /// Pado.
    Pado,
}

impl Mode {
    /// Display name used by the benchmark harness.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Spark => "Spark",
            Mode::SparkCkpt => "Spark-checkpoint",
            Mode::Pado => "Pado",
        }
    }
}

/// Cluster and engine configuration for one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of transient containers.
    pub n_transient: usize,
    /// Number of reserved containers (the master gets its own extra
    /// container, as in the paper).
    pub n_reserved: usize,
    /// Transient container links/slots (m3.xlarge-like).
    pub transient_spec: NodeSpec,
    /// Reserved container links/slots (i2.xlarge-like).
    pub reserved_spec: NodeSpec,
    /// External input store (S3-like).
    pub store_spec: NodeSpec,
    /// Transient lifetime distribution (the eviction rate).
    pub lifetimes: LifetimeDist,
    /// RNG seed for the eviction process.
    pub seed: u64,
    /// Abort the run beyond this much virtual time.
    pub time_limit_us: u64,
    /// Pado: enable transient-side partial aggregation (§3.2.7).
    pub partial_aggregation: bool,
    /// Extra transient containers forming a second, longer-lived pool
    /// (Harvest-style lifetime classes, §6). Zero disables the pool.
    pub n_transient_long: usize,
    /// Lifetime distribution of the long pool.
    pub long_lifetimes: LifetimeDist,
    /// Pado: place high-recomputation-cost transient operators on the
    /// long-lived pool (the §6 lifetime-aware placement extension).
    pub lifetime_aware: bool,
    /// Deterministic, scripted evictions: `(virtual time µs, k)` evicts
    /// the `k`-th initial transient container at that time (in addition
    /// to the stochastic eviction process).
    pub scripted_evictions: Vec<(u64, usize)>,
    /// Cache broadcast (one-to-many) inputs per container (§3.2.7; Spark
    /// gets the same courtesy for its broadcast variables).
    pub broadcast_caching: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_transient: 40,
            n_reserved: 5,
            transient_spec: NodeSpec::from_gbps(4, 1.0),
            reserved_spec: NodeSpec::from_gbps(4, 1.0),
            store_spec: NodeSpec::from_gbps(0, 40.0),
            lifetimes: LifetimeDist::None,
            seed: 1,
            time_limit_us: 24 * 60 * pado_simcluster::MIN,
            partial_aggregation: true,
            n_transient_long: 0,
            long_lifetimes: LifetimeDist::None,
            lifetime_aware: false,
            scripted_evictions: Vec::new(),
            broadcast_caching: true,
        }
    }
}

/// Engine events flowing through the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Part of a task's input fetch arrived.
    Fetch {
        /// Flattened task id.
        task: usize,
        /// Attempt guard.
        attempt: u32,
    },
    /// A task finished computing.
    ComputeDone {
        /// Flattened task id.
        task: usize,
        /// Attempt guard.
        attempt: u32,
    },
    /// Part of a task's output push (Pado) arrived at a reserved node.
    Push {
        /// Flattened task id.
        task: usize,
        /// Attempt guard.
        attempt: u32,
    },
    /// A task's checkpoint write (Spark-checkpoint) completed.
    Ckpt {
        /// Flattened task id.
        task: usize,
        /// Attempt guard.
        attempt: u32,
    },
}

impl Ev {
    fn task(self) -> usize {
        match self {
            Ev::Fetch { task, .. }
            | Ev::ComputeDone { task, .. }
            | Ev::Push { task, .. }
            | Ev::Ckpt { task, .. } => task,
        }
    }
    fn attempt(self) -> u32 {
        match self {
            Ev::Fetch { attempt, .. }
            | Ev::ComputeDone { attempt, .. }
            | Ev::Push { attempt, .. }
            | Ev::Ckpt { attempt, .. } => attempt,
        }
    }
}

#[derive(Debug, Clone)]
enum TState {
    Pending,
    Fetching { node: ContainerId, waiting: usize },
    Computing { node: ContainerId },
    Pushing { node: ContainerId, waiting: usize },
    Done(DoneInfo),
}

#[derive(Debug, Clone, Copy)]
struct DoneInfo {
    /// Node that produced the output (local copy).
    node: ContainerId,
    /// Whether the local copy still exists.
    available: bool,
    /// Whether a copy lives on eviction-free resources (pushed,
    /// checkpointed, produced on reserved, or written to the job sink).
    safe: bool,
    /// Where the safe copy lives (checkpoint node for Spark-checkpoint).
    safe_node: Option<ContainerId>,
}

/// One simulated engine run.
pub struct SimEngine {
    mode: Mode,
    plan: PhysicalPlan,
    costs: FopCosts,
    config: SimConfig,
    cluster: Cluster<Ev>,
    pool: SlotPool,
    master_pool: SlotPool,
    /// Flattened task table; `offset[fop] + index`.
    state: Vec<TState>,
    attempt: Vec<u32>,
    attempted: Vec<bool>,
    offset: Vec<usize>,
    /// Pado: reserved tasks' pre-assigned receiver nodes.
    assigned: HashMap<usize, ContainerId>,
    /// Per-(container, producer fop) broadcast cache.
    bcast_cache: HashSet<(ContainerId, FopId)>,
    /// Nodes able to serve each broadcast dataset (the producer plus every
    /// container that finished fetching it) — models torrent-style
    /// peer-to-peer broadcast distribution.
    bcast_sources: HashMap<FopId, Vec<ContainerId>>,
    bcast_rr: usize,
    /// Broadcast keys a fetching task will cache once its fetch completes.
    pending_bcast: HashMap<usize, Vec<(ContainerId, FopId)>>,
    ckpt_rr: usize,
    metrics: RunMetrics,
    /// Whether each fop head is a `Created` source (driver-side in Spark).
    created_src: Vec<bool>,
    /// Whether each fop is a driver-side global aggregate in Spark modes.
    driver_agg: Vec<bool>,
    /// Whether each fop prefers the long-lived transient pool (§6).
    prefer_long: Vec<bool>,
}

impl SimEngine {
    /// Prepares a run: compiles nothing (takes a compiled plan), derives
    /// costs, builds the cluster, and assigns Pado receivers.
    pub fn new(
        mode: Mode,
        dag: &LogicalDag,
        plan: PhysicalPlan,
        model: &CostModel,
        config: SimConfig,
    ) -> Self {
        let costs = FopCosts::derive(&plan, model);
        let mut cluster = Cluster::new(
            config.n_transient,
            config.n_reserved,
            config.transient_spec,
            config.reserved_spec,
            config.store_spec,
            config.lifetimes.clone(),
            config.seed,
        );
        let initial_transient = cluster.alive(Kind::Transient);
        for &(at, k) in &config.scripted_evictions {
            if !initial_transient.is_empty() {
                cluster.schedule_eviction(at, initial_transient[k % initial_transient.len()]);
            }
        }
        if config.n_transient_long > 0 {
            cluster.add_transient_pool(
                config.n_transient_long,
                config.transient_spec,
                config.long_lifetimes.clone(),
            );
        }
        // Lifetime-aware placement (§6): steer the transient operators
        // whose eviction wastes the most work to the long-lived pool. The
        // waste of losing one task is its own compute time plus the
        // recomputation cascade through transient ancestors, so the
        // steering signal is the structural recomputation score weighted
        // by the fused chain's task duration.
        let prefer_long: Vec<bool> = if config.lifetime_aware && config.n_transient_long > 0 {
            let scores =
                pado_core::compiler::recomputation_scores(dag, &plan.placement).unwrap_or_default();
            let weight = |f: &pado_core::compiler::Fop| {
                let cascade: f64 = f
                    .chain
                    .iter()
                    .map(|&op| scores.get(op).copied().unwrap_or(1.0))
                    .sum();
                costs.compute_us[f.id] as f64 * cascade
            };
            let mut transient: Vec<f64> = plan
                .fops
                .iter()
                .filter(|f| f.placement == Placement::Transient)
                .map(&weight)
                .collect();
            transient.sort_by(f64::total_cmp);
            let median = transient.get(transient.len() / 2).copied().unwrap_or(0.0);
            plan.fops
                .iter()
                .map(|f| f.placement == Placement::Transient && weight(f) >= median.max(1.0))
                .collect()
        } else {
            vec![false; plan.fops.len()]
        };

        let mut offset = Vec::with_capacity(plan.fops.len());
        let mut total = 0usize;
        for f in &plan.fops {
            offset.push(total);
            total += f.parallelism;
        }

        let created_src: Vec<bool> = plan
            .fops
            .iter()
            .map(|f| {
                matches!(
                    dag.op(f.head()).kind,
                    OperatorKind::Source {
                        kind: SourceKind::Created,
                        ..
                    }
                )
            })
            .collect();
        // Spark runs singleton collection/aggregation/update steps in the
        // driver process (e.g. MLR's model update, §5.2.2), which lives on
        // the never-evicted master container. Read sources stay on
        // executors regardless of parallelism.
        let driver_agg: Vec<bool> = plan
            .fops
            .iter()
            .map(|f| {
                f.parallelism == 1
                    && !matches!(
                        dag.op(f.head()).kind,
                        OperatorKind::Source {
                            kind: SourceKind::Read,
                            ..
                        }
                    )
            })
            .collect();

        let mut engine = SimEngine {
            mode,
            plan,
            costs,
            config,
            cluster,
            pool: SlotPool::new(),
            master_pool: SlotPool::new(),
            state: vec![TState::Pending; total],
            attempt: vec![0; total],
            attempted: vec![false; total],
            offset,
            assigned: HashMap::new(),
            bcast_cache: HashSet::new(),
            bcast_sources: HashMap::new(),
            bcast_rr: 0,
            pending_bcast: HashMap::new(),
            ckpt_rr: 0,
            metrics: RunMetrics {
                original_tasks: total,
                ..RunMetrics::default()
            },
            created_src,
            driver_agg,
            prefer_long,
        };
        engine.init_pools();
        engine.assign_receivers();
        engine
    }

    fn init_pools(&mut self) {
        let master = Cluster::<Ev>::MASTER;
        self.master_pool
            .add(master, self.cluster.container(master).slots.max(1));
        for c in self.cluster.alive(Kind::Transient) {
            self.pool.add(c, self.cluster.container(c).slots);
        }
        let reserved_schedulable = matches!(self.mode, Mode::Spark | Mode::Pado);
        if reserved_schedulable {
            for c in self.cluster.alive(Kind::Reserved) {
                self.pool.add(c, self.cluster.container(c).slots);
            }
        }
    }

    /// Pado pre-assigns every reserved task a receiver node, round-robin,
    /// so transient producers know their push destinations (§3.2.3).
    fn assign_receivers(&mut self) {
        if self.mode != Mode::Pado {
            return;
        }
        let reserved = self.cluster.alive(Kind::Reserved);
        if reserved.is_empty() {
            return;
        }
        let mut rr = 0usize;
        for f in 0..self.plan.fops.len() {
            if self.plan.fops[f].placement != Placement::Reserved {
                continue;
            }
            for i in 0..self.plan.fops[f].parallelism {
                self.assigned
                    .insert(self.offset[f] + i, reserved[rr % reserved.len()]);
                rr += 1;
            }
        }
    }

    fn flat(&self, fop: FopId, index: usize) -> usize {
        self.offset[fop] + index
    }

    fn unflat(&self, t: usize) -> (FopId, usize) {
        // Offsets are strictly increasing (parallelism >= 1), so the
        // owning fop is unique.
        let fop = match self.offset.binary_search(&t) {
            Ok(f) => f,
            Err(f) => f - 1,
        };
        (fop, t - self.offset[fop])
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] if the event queue drains early (an engine
    /// bug); [`SimError::TimedOut`] past the configured virtual deadline.
    pub fn run(mut self) -> Result<RunMetrics, SimError> {
        self.schedule();
        while !self.all_done() {
            if self.cluster.now() > self.config.time_limit_us {
                return Err(SimError::TimedOut);
            }
            let Some(event) = self.cluster.next_event() else {
                let completed = self
                    .state
                    .iter()
                    .filter(|s| matches!(s, TState::Done(_)))
                    .count();
                return Err(SimError::Stalled {
                    completed,
                    total: self.state.len(),
                });
            };
            self.on_event(event);
            self.schedule();
        }
        self.metrics.jct_us = self.cluster.now();
        self.metrics.evictions = self.cluster.evictions;
        self.metrics.bytes_transferred = self.cluster.bytes_transferred();
        Ok(self.metrics)
    }

    fn all_done(&self) -> bool {
        self.state.iter().all(|s| matches!(s, TState::Done(_)))
    }

    fn on_event(&mut self, event: Event<Ev>) {
        match event {
            Event::Timer(ev) => self.on_timer(ev),
            Event::TransferDone { tag, .. } => self.on_transfer_done(tag),
            Event::TransferFailed { tag, .. } => self.on_transfer_failed(tag),
            Event::Evicted(c) => self.on_evicted(c),
            Event::ContainerAdded(c) => {
                self.pool.add(c, self.cluster.container(c).slots);
            }
        }
    }

    fn current(&self, ev: Ev) -> bool {
        self.attempt[ev.task()] == ev.attempt()
    }

    fn on_timer(&mut self, ev: Ev) {
        if !self.current(ev) {
            return;
        }
        if let Ev::ComputeDone { task, .. } = ev {
            if let TState::Computing { node } = self.state[task] {
                self.finish_compute(task, node);
            }
        }
    }

    fn on_transfer_done(&mut self, ev: Ev) {
        if !self.current(ev) {
            return;
        }
        match ev {
            Ev::Fetch { task, .. } => {
                if let TState::Fetching { node, waiting } = self.state[task] {
                    if waiting <= 1 {
                        self.start_compute(task, node);
                    } else {
                        self.state[task] = TState::Fetching {
                            node,
                            waiting: waiting - 1,
                        };
                    }
                }
            }
            Ev::Push { task, .. } => {
                if let TState::Pushing { node, waiting } = self.state[task] {
                    if waiting <= 1 {
                        self.state[task] = TState::Done(DoneInfo {
                            node,
                            available: self.cluster.container(node).alive,
                            safe: true,
                            safe_node: None,
                        });
                    } else {
                        self.state[task] = TState::Pushing {
                            node,
                            waiting: waiting - 1,
                        };
                    }
                }
            }
            Ev::Ckpt { task, .. } => {
                if let TState::Done(info) = &mut self.state[task] {
                    info.safe = true;
                }
            }
            Ev::ComputeDone { .. } => {}
        }
    }

    fn on_transfer_failed(&mut self, ev: Ev) {
        if !self.current(ev) {
            return;
        }
        match ev {
            Ev::Fetch { task, .. } => {
                // A fetch source died; abandon this attempt. (If the
                // task's own node died, the eviction handler already
                // bumped the attempt and this event is stale.)
                if let TState::Fetching { node, .. } = self.state[task] {
                    self.revert(task);
                    self.pool.release(node);
                    self.master_pool.release(node);
                }
            }
            Ev::Push { task, .. } => {
                // Push destinations are reserved and do not die in these
                // experiments; a failed push means the producer died and
                // the eviction handler already reverted the task.
                let _ = task;
            }
            Ev::Ckpt { task, .. } => {
                // The producer died mid-checkpoint: the output stays
                // unsafe; lineage recovery will recompute it on demand.
                let _ = task;
            }
            Ev::ComputeDone { .. } => {}
        }
    }

    fn revert(&mut self, task: usize) {
        self.attempt[task] += 1;
        self.state[task] = TState::Pending;
        // A reverted fetch can no longer seed its pending broadcasts.
        if let Some(keys) = self.pending_bcast.remove(&task) {
            for (node, fop) in keys {
                if !self.bcast_cache.contains(&(node, fop)) {
                    if let Some(sources) = self.bcast_sources.get_mut(&fop) {
                        sources.retain(|&n| n != node);
                    }
                }
            }
        }
    }

    fn on_evicted(&mut self, c: ContainerId) {
        self.pool.remove(c);
        self.bcast_cache.retain(|(node, _)| *node != c);
        for sources in self.bcast_sources.values_mut() {
            sources.retain(|&n| n != c);
        }
        for t in 0..self.state.len() {
            match self.state[t] {
                TState::Fetching { node, .. }
                | TState::Computing { node }
                | TState::Pushing { node, .. }
                    if node == c =>
                {
                    self.revert(t);
                }
                TState::Done(ref mut info) if info.node == c => {
                    info.available = false;
                }
                _ => {}
            }
        }
    }

    /// Where a fop's tasks may run under this mode.
    fn placement_target(&self, fop: FopId, task: usize) -> PlacementTarget {
        match self.mode {
            Mode::Spark | Mode::SparkCkpt => {
                if self.driver_agg[fop] || self.created_src[fop] {
                    PlacementTarget::Master
                } else {
                    PlacementTarget::AnyExecutor
                }
            }
            Mode::Pado => match self.plan.fops[fop].placement {
                Placement::Reserved => PlacementTarget::Fixed(self.assigned.get(&task).copied()),
                Placement::Transient => {
                    if self.prefer_long[fop] {
                        PlacementTarget::TransientPool(1)
                    } else if self.config.lifetime_aware && self.config.n_transient_long > 0 {
                        PlacementTarget::TransientPool(0)
                    } else {
                        PlacementTarget::Transient
                    }
                }
            },
        }
    }

    /// One scheduling pass: launch every ready pending task that can get
    /// a slot. Tasks are visited in plan (stage-topological) order, so
    /// lineage recomputation naturally precedes dependents. Fops whose
    /// placement class has no free slot are skipped wholesale — readiness
    /// checks over thousands of producers are pointless without a slot.
    fn schedule(&mut self) {
        for f in 0..self.plan.fops.len() {
            if !self.any_slot_for(f) {
                continue;
            }
            for i in 0..self.plan.fops[f].parallelism {
                let t = self.flat(f, i);
                if matches!(self.state[t], TState::Pending) && self.ready(f, i) {
                    self.try_launch(f, i);
                    if !self.any_slot_for(f) {
                        break;
                    }
                }
            }
        }
    }

    /// Whether some executor eligible for this fop has a free slot.
    fn any_slot_for(&self, fop: FopId) -> bool {
        let sample_task = self.offset[fop];
        match self.placement_target(fop, sample_task) {
            PlacementTarget::Master => self.master_pool.any_free(),
            PlacementTarget::AnyExecutor => self.pool.any_free(),
            PlacementTarget::Transient | PlacementTarget::TransientPool(_) => {
                let cl = &self.cluster;
                self.pool
                    .free_slots_where(|c| cl.container(c).kind == Kind::Transient)
                    > 0
            }
            PlacementTarget::Fixed(Some(n)) => self.pool.free_on(n) > 0,
            PlacementTarget::Fixed(None) => false,
        }
    }

    /// Whether a task's inputs are all usable; reverts producers whose
    /// outputs are lost (lazy lineage recovery — the source of Spark's
    /// cascading recomputations).
    ///
    /// Cost/semantics balance: a producer that is simply not finished yet
    /// short-circuits the scan (the overwhelmingly common case while a
    /// stage is in flight), but *lost* outputs never block the scan — all
    /// of them are reverted in one pass so recovery recomputes them in
    /// parallel rather than one per scheduling round.
    fn ready(&mut self, fop: FopId, index: usize) -> bool {
        let mut ok = true;
        for e in self.plan.in_edges(fop) {
            let src_par = self.plan.fops[e.src].parallelism;
            let dst_par = self.plan.fops[fop].parallelism;
            for si in required_src_indices(&e, index, src_par, dst_par) {
                let st = self.flat(e.src, si);
                match self.state[st] {
                    TState::Done(info) => {
                        let usable = match self.mode {
                            Mode::Spark => info.available,
                            Mode::SparkCkpt => info.safe,
                            Mode::Pado => {
                                if self.plan.fops[e.src].placement == Placement::Reserved {
                                    // Preserved on eviction-free storage.
                                    info.safe || info.available
                                } else if self.plan.fops[fop].placement == Placement::Reserved {
                                    // Pushed to this consumer's node.
                                    info.safe || info.available
                                } else {
                                    // Transient-to-transient edge: only
                                    // the producer-local copy serves it.
                                    info.available
                                }
                            }
                        };
                        if !usable {
                            // Lost and needed: recompute the producer
                            // (for Pado this only happens within the
                            // running stage; committed stage outputs on
                            // reserved containers are never lost here).
                            if !info.available {
                                self.revert(st);
                                ok = false;
                            } else {
                                return false;
                            }
                        }
                    }
                    _ => return false,
                }
            }
        }
        ok
    }

    fn try_launch(&mut self, fop: FopId, index: usize) {
        let t = self.flat(fop, index);
        let node = match self.placement_target(fop, t) {
            PlacementTarget::Master => {
                let m = Cluster::<Ev>::MASTER;
                if self.master_pool.acquire_on(m) {
                    Some(m)
                } else {
                    None
                }
            }
            PlacementTarget::AnyExecutor => self.pool.acquire_any(),
            PlacementTarget::Transient => {
                let cl = &self.cluster;
                self.pool
                    .acquire_where(|c| cl.container(c).kind == Kind::Transient)
            }
            PlacementTarget::TransientPool(pool) => {
                let cl = &self.cluster;
                self.pool
                    .acquire_where(|c| {
                        cl.container(c).kind == Kind::Transient && cl.container(c).pool == pool
                    })
                    .or_else(|| {
                        // Fall back to any transient slot rather than stall.
                        self.pool
                            .acquire_where(|c| cl.container(c).kind == Kind::Transient)
                    })
            }
            PlacementTarget::Fixed(Some(n)) => {
                if self.pool.acquire_on(n) {
                    Some(n)
                } else {
                    None
                }
            }
            PlacementTarget::Fixed(None) => None,
        };
        let Some(node) = node else { return };

        self.metrics.tasks_launched += 1;
        if self.attempted[t] {
            self.metrics.relaunched_tasks += 1;
        } else {
            self.attempted[t] = true;
        }

        let fetches = self.fetch_plan(fop, index, node);
        let attempt = self.attempt[t];
        if fetches.is_empty() {
            self.start_compute(t, node);
        } else {
            self.state[t] = TState::Fetching {
                node,
                waiting: fetches.len(),
            };
            for (src_node, bytes) in fetches {
                self.cluster
                    .start_transfer(src_node, node, bytes, Ev::Fetch { task: t, attempt });
            }
        }
    }

    /// Computes the (source node, bytes) transfers a task needs before it
    /// can run on `node`. Local data contributes nothing.
    fn fetch_plan(
        &mut self,
        fop: FopId,
        index: usize,
        node: ContainerId,
    ) -> Vec<(ContainerId, f64)> {
        let t = self.flat(fop, index);
        let mut by_src: HashMap<ContainerId, f64> = HashMap::new();
        // External input.
        let read = self.costs.read_bytes[fop];
        if read > 0.0 {
            by_src.insert(Cluster::<Ev>::STORE, read);
        }
        for e in self.plan.in_edges(fop) {
            let src_par = self.plan.fops[e.src].parallelism;
            let dst_par = self.plan.fops[fop].parallelism;
            let is_bcast = e.slot == InputSlot::Side || e.dep == DepType::OneToMany;
            if is_bcast && self.config.broadcast_caching {
                if self.bcast_cache.contains(&(node, e.src)) {
                    continue; // Served from the container's input cache.
                }
                self.pending_bcast.entry(t).or_default().push((node, e.src));
                // Torrent-style swarm: a fetching container immediately
                // relays chunks, so even the first broadcast wave spreads
                // over all participants instead of hammering the producer.
                let sources = self.bcast_sources.entry(e.src).or_default();
                if !sources.contains(&node) {
                    sources.push(node);
                }
            }
            for si in required_src_indices(&e, index, src_par, dst_par) {
                let st = self.flat(e.src, si);
                let TState::Done(info) = self.state[st] else {
                    continue; // `ready` guaranteed this cannot happen.
                };
                let bytes = match e.dep {
                    DepType::ManyToMany => self.costs.out_bytes[e.src] / dst_par as f64,
                    _ => self.costs.out_bytes[e.src],
                };
                let bytes = self.pushed_bytes_factor(e.src) * bytes;
                let mut src_node = match self.mode {
                    Mode::Spark => info.node,
                    Mode::SparkCkpt => info.safe_node.unwrap_or(info.node),
                    Mode::Pado => {
                        if info.safe
                            && self.plan.fops[e.src].placement == Placement::Transient
                            && self.plan.fops[fop].placement == Placement::Reserved
                        {
                            // Pushed to this consumer's reserved node.
                            node
                        } else {
                            info.node
                        }
                    }
                };
                // Broadcast data is served torrent-style: any container
                // that already holds the dataset can seed it, so broadcast
                // bandwidth scales with the cluster instead of pinning the
                // producer's uplink.
                if is_bcast {
                    if let Some(sources) = self.bcast_sources.get(&e.src) {
                        let alive: Vec<ContainerId> = sources
                            .iter()
                            .copied()
                            .filter(|&n| n != node && self.cluster.container(n).alive)
                            .collect();
                        if !alive.is_empty() {
                            src_node = alive[self.bcast_rr % alive.len()];
                            self.bcast_rr += 1;
                        }
                    }
                }
                if src_node == node {
                    continue;
                }
                *by_src.entry(src_node).or_insert(0.0) += bytes;
            }
        }
        // HashMap iteration order is per-process random; transfers must
        // start in a deterministic order or event-queue tie-breaks (and
        // with them the whole simulated schedule) vary run to run.
        let mut plan: Vec<(ContainerId, f64)> =
            by_src.into_iter().filter(|(_, b)| *b > 0.0).collect();
        plan.sort_unstable_by_key(|&(src, _)| src);
        plan
    }

    /// The byte-shrink factor partial aggregation applies to a producer's
    /// outputs (Pado only, combine-bound edges only).
    fn pushed_bytes_factor(&self, src: FopId) -> f64 {
        if self.mode == Mode::Pado
            && self.config.partial_aggregation
            && self.plan.fops[src].placement == Placement::Transient
        {
            self.costs.preagg[src].unwrap_or(1.0)
        } else {
            1.0
        }
    }

    fn start_compute(&mut self, t: usize, node: ContainerId) {
        if let Some(keys) = self.pending_bcast.remove(&t) {
            for (cache_node, src_fop) in keys {
                self.bcast_cache.insert((cache_node, src_fop));
                let sources = self.bcast_sources.entry(src_fop).or_default();
                if !sources.contains(&cache_node) {
                    sources.push(cache_node);
                }
            }
        }
        let (fop, _) = self.unflat(t);
        self.state[t] = TState::Computing { node };
        let attempt = self.attempt[t];
        self.cluster.schedule_after(
            self.costs.compute_us[fop].max(1),
            Ev::ComputeDone { task: t, attempt },
        );
    }

    fn finish_compute(&mut self, t: usize, node: ContainerId) {
        let (fop, index) = self.unflat(t);
        self.pool.release(node);
        self.master_pool.release(node);
        let attempt = self.attempt[t];
        let terminal = self.plan.out_edges(fop).is_empty();
        let on_safe_node = !matches!(self.cluster.container(node).kind, Kind::Transient);

        match self.mode {
            Mode::Spark => {
                self.state[t] = TState::Done(DoneInfo {
                    node,
                    available: true,
                    // Terminal outputs are written to the job sink;
                    // reserved/master-resident outputs cannot be evicted.
                    safe: terminal || on_safe_node,
                    safe_node: None,
                });
            }
            Mode::SparkCkpt => {
                let out = self.costs.out_bytes[fop];
                if terminal || on_safe_node || out <= 0.0 {
                    self.state[t] = TState::Done(DoneInfo {
                        node,
                        available: true,
                        safe: true,
                        safe_node: None,
                    });
                } else {
                    // Task-level asynchronous checkpointing to stable
                    // storage on the reserved containers.
                    let reserved = self.cluster.alive(Kind::Reserved);
                    let dst = reserved[self.ckpt_rr % reserved.len()];
                    self.ckpt_rr += 1;
                    self.state[t] = TState::Done(DoneInfo {
                        node,
                        available: true,
                        safe: false,
                        safe_node: Some(dst),
                    });
                    self.metrics.bytes_checkpointed += out;
                    self.cluster
                        .start_transfer(node, dst, out, Ev::Ckpt { task: t, attempt });
                }
            }
            Mode::Pado => {
                if self.plan.fops[fop].placement == Placement::Reserved || terminal {
                    self.state[t] = TState::Done(DoneInfo {
                        node,
                        available: true,
                        safe: true,
                        safe_node: None,
                    });
                    return;
                }
                // Push outputs to the reserved consumers immediately so
                // they escape the threat of evictions (§3.2.4).
                let pushes = self.push_plan(fop, index, node);
                if pushes.is_empty() {
                    // All consumers are transient: the output stays local
                    // and at risk, exactly like a Spark map output.
                    self.state[t] = TState::Done(DoneInfo {
                        node,
                        available: true,
                        safe: false,
                        safe_node: None,
                    });
                    return;
                }
                self.state[t] = TState::Pushing {
                    node,
                    waiting: pushes.len(),
                };
                for (dst, bytes) in pushes {
                    self.metrics.bytes_pushed += bytes;
                    self.cluster
                        .start_transfer(node, dst, bytes, Ev::Push { task: t, attempt });
                }
            }
        }
    }

    /// The (destination reserved node, bytes) pushes of a completed
    /// transient task, after partial aggregation.
    fn push_plan(&self, fop: FopId, index: usize, node: ContainerId) -> Vec<(ContainerId, f64)> {
        let mut by_dst: HashMap<ContainerId, f64> = HashMap::new();
        let factor = self.pushed_bytes_factor(fop);
        for e in self.plan.out_edges(fop) {
            let dst_fop = &self.plan.fops[e.dst];
            if dst_fop.placement != Placement::Reserved {
                continue;
            }
            let dst_par = dst_fop.parallelism;
            let out = self.costs.out_bytes[fop] * factor;
            match e.dep {
                DepType::OneToOne | DepType::ManyToOne => {
                    let di = match e.dep {
                        DepType::OneToOne => index,
                        _ => index % dst_par.max(1),
                    };
                    if di < dst_par {
                        if let Some(&n) = self.assigned.get(&(self.offset[e.dst] + di)) {
                            *by_dst.entry(n).or_insert(0.0) += out;
                        }
                    }
                }
                DepType::OneToMany => {
                    for di in 0..dst_par {
                        if let Some(&n) = self.assigned.get(&(self.offset[e.dst] + di)) {
                            *by_dst.entry(n).or_insert(0.0) += out;
                        }
                    }
                }
                DepType::ManyToMany => {
                    for di in 0..dst_par {
                        if let Some(&n) = self.assigned.get(&(self.offset[e.dst] + di)) {
                            *by_dst.entry(n).or_insert(0.0) += out / dst_par as f64;
                        }
                    }
                }
            }
        }
        // Deterministic push order for the same reason as `fetch_plan`.
        let mut plan: Vec<(ContainerId, f64)> = by_dst
            .into_iter()
            .map(|(dst, bytes)| (dst, bytes.max(1.0)))
            .filter(|&(dst, _)| dst != node)
            .collect();
        plan.sort_unstable_by_key(|&(dst, _)| dst);
        plan
    }
}

#[derive(Debug, Clone, Copy)]
enum PlacementTarget {
    Master,
    AnyExecutor,
    Transient,
    TransientPool(usize),
    Fixed(Option<ContainerId>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{CostModel, OpCost};
    use crate::simulate;
    use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn};

    /// A Map-Reduce-like job: read from store, map, shuffle, reduce.
    fn mr_job(maps: usize, reduces: usize) -> (LogicalDag, CostModel) {
        let p = Pipeline::new();
        let read = p.read("Read", maps, SourceFn::from_vec(vec![]));
        let map = read.par_do("Map", ParDoFn::per_element(|v, e| e(v.clone())));
        let red = map
            .combine_per_key("Reduce", CombineFn::sum_i64())
            .with_parallelism(reduces);
        let mut model = CostModel::new();
        model
            .set(
                read.op_id(),
                OpCost {
                    compute_us: 2_000_000,
                    read_store_bytes: 128e6,
                    output_bytes: 0.0,
                },
            )
            .set(
                map.op_id(),
                OpCost {
                    compute_us: 3_000_000,
                    read_store_bytes: 0.0,
                    output_bytes: 32e6,
                },
            )
            .set(
                red.op_id(),
                OpCost {
                    compute_us: 1_000_000,
                    read_store_bytes: 0.0,
                    output_bytes: 1e6,
                },
            );
        (p.build().unwrap(), model)
    }

    fn small_config() -> SimConfig {
        SimConfig {
            n_transient: 8,
            n_reserved: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn all_modes_complete_without_evictions() {
        let (dag, model) = mr_job(32, 8);
        for mode in [Mode::Spark, Mode::SparkCkpt, Mode::Pado] {
            let m = simulate(mode, &dag, &model, small_config()).unwrap();
            assert!(m.jct_us > 0, "{mode:?}");
            assert_eq!(m.relaunched_tasks, 0, "{mode:?}");
            assert_eq!(m.tasks_launched, m.original_tasks, "{mode:?}");
        }
    }

    #[test]
    fn only_ckpt_checkpoints_and_only_pado_pushes() {
        let (dag, model) = mr_job(16, 4);
        let spark = simulate(Mode::Spark, &dag, &model, small_config()).unwrap();
        let ckpt = simulate(Mode::SparkCkpt, &dag, &model, small_config()).unwrap();
        let pado = simulate(Mode::Pado, &dag, &model, small_config()).unwrap();
        assert_eq!(spark.bytes_checkpointed, 0.0);
        assert_eq!(spark.bytes_pushed, 0.0);
        assert!(ckpt.bytes_checkpointed > 0.0);
        assert_eq!(ckpt.bytes_pushed, 0.0);
        assert_eq!(pado.bytes_checkpointed, 0.0);
        assert!(pado.bytes_pushed > 0.0);
    }

    #[test]
    fn checkpointing_costs_extra_network_volume() {
        let (dag, model) = mr_job(16, 4);
        let spark = simulate(Mode::Spark, &dag, &model, small_config()).unwrap();
        let ckpt = simulate(Mode::SparkCkpt, &dag, &model, small_config()).unwrap();
        assert!(
            ckpt.bytes_transferred > spark.bytes_transferred,
            "checkpoint copies should add traffic: {} !> {}",
            ckpt.bytes_transferred,
            spark.bytes_transferred
        );
    }

    /// An MLR-like iterative job: per iteration, transient gradient tasks
    /// read training data and the broadcast model, and a reserved/driver
    /// aggregation folds the gradients into the next model.
    fn iterative_job(iters: usize, maps: usize) -> (LogicalDag, CostModel) {
        use pado_dag::Value;
        let p = Pipeline::new();
        let train = p.read("Read", maps, SourceFn::from_vec(vec![]));
        let mut model_pc = p.create("Model0", vec![Value::from(0.0)]);
        let mut cost = CostModel::new();
        cost.set(
            train.op_id(),
            OpCost {
                compute_us: 500_000,
                read_store_bytes: 64e6,
                output_bytes: 64e6,
            },
        );
        cost.set(
            model_pc.op_id(),
            OpCost {
                compute_us: 1_000,
                read_store_bytes: 0.0,
                output_bytes: 50e6,
            },
        );
        for k in 0..iters {
            let grad = train.par_do_with_side(
                format!("Grad{k}"),
                &model_pc,
                ParDoFn::per_element(|v, e| e(v.clone())),
            );
            let agg = grad.aggregate(format!("Agg{k}"), CombineFn::sum_vector());
            cost.set(
                grad.op_id(),
                OpCost {
                    compute_us: 20_000_000,
                    read_store_bytes: 0.0,
                    output_bytes: 50e6,
                },
            );
            cost.set(
                agg.op_id(),
                OpCost {
                    compute_us: 2_000_000,
                    read_store_bytes: 0.0,
                    output_bytes: 50e6,
                },
            );
            model_pc = agg;
        }
        (p.build().unwrap(), cost)
    }

    #[test]
    fn evictions_relaunch_fewer_tasks_on_pado_for_iterative_jobs() {
        let (dag, model) = iterative_job(4, 24);
        let config = SimConfig {
            n_transient: 8,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (90 * pado_simcluster::SEC) as f64,
            },
            seed: 11,
            ..SimConfig::default()
        };
        let spark = simulate(Mode::Spark, &dag, &model, config.clone()).unwrap();
        let pado = simulate(Mode::Pado, &dag, &model, config).unwrap();
        assert!(spark.evictions > 0 && pado.evictions > 0);
        // Pado pushes gradients to reserved containers as soon as they
        // complete, so evictions relaunch far fewer tasks than Spark,
        // whose completed-but-unconsumed gradient outputs die with their
        // containers.
        assert!(
            pado.relaunch_ratio() < spark.relaunch_ratio(),
            "pado {} vs spark {}",
            pado.relaunch_ratio(),
            spark.relaunch_ratio()
        );
        assert!(
            pado.jct_us < spark.jct_us,
            "pado {}m vs spark {}m",
            pado.jct_minutes(),
            spark.jct_minutes()
        );
    }

    #[test]
    fn pado_completes_under_heavy_evictions() {
        let (dag, model) = mr_job(64, 8);
        let config = SimConfig {
            n_transient: 8,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (30 * pado_simcluster::SEC) as f64,
            },
            seed: 7,
            ..SimConfig::default()
        };
        let m = simulate(Mode::Pado, &dag, &model, config).unwrap();
        assert!(m.evictions > 0);
        assert!(m.jct_us > 0);
    }

    #[test]
    fn broadcast_caching_reduces_traffic() {
        // An iterative job with a broadcast model.
        let p = Pipeline::new();
        let read = p.read("Read", 16, SourceFn::from_vec(vec![]));
        let model0 = p.create("Model", vec![pado_dag::Value::from(0.0)]);
        let grad =
            read.par_do_with_side("Grad", &model0, ParDoFn::per_element(|v, e| e(v.clone())));
        let agg = grad.aggregate("Agg", CombineFn::sum_vector());
        let mut model = CostModel::new();
        model
            .set(
                read.op_id(),
                OpCost {
                    compute_us: 1_000_000,
                    read_store_bytes: 64e6,
                    output_bytes: 0.0,
                },
            )
            .set(
                model0.op_id(),
                OpCost {
                    compute_us: 1_000,
                    read_store_bytes: 0.0,
                    output_bytes: 100e6,
                },
            )
            .set(
                grad.op_id(),
                OpCost {
                    compute_us: 2_000_000,
                    read_store_bytes: 0.0,
                    output_bytes: 10e6,
                },
            )
            .set(
                agg.op_id(),
                OpCost {
                    compute_us: 500_000,
                    read_store_bytes: 0.0,
                    output_bytes: 1e6,
                },
            );
        let dag = p.build().unwrap();
        // Two transient containers x 4 slots = 8 slots for 16 tasks: the
        // second wave finds the model cached on its container.
        let cfg = SimConfig {
            n_transient: 2,
            n_reserved: 2,
            ..SimConfig::default()
        };
        let cached = simulate(Mode::Pado, &dag, &model, cfg.clone()).unwrap();
        let uncached = simulate(
            Mode::Pado,
            &dag,
            &model,
            SimConfig {
                broadcast_caching: false,
                ..cfg
            },
        )
        .unwrap();
        assert!(
            cached.bytes_transferred < uncached.bytes_transferred,
            "caching should cut broadcast traffic: {} !< {}",
            cached.bytes_transferred,
            uncached.bytes_transferred
        );
    }

    #[test]
    fn partial_aggregation_reduces_pushed_bytes() {
        let p = Pipeline::new();
        let read = p.read("Read", 16, SourceFn::from_vec(vec![]));
        let grad = read.par_do("Grad", ParDoFn::per_element(|v, e| e(v.clone())));
        let agg = grad.aggregate("Agg", CombineFn::sum_vector());
        let mut model = CostModel::new();
        model
            .set(
                read.op_id(),
                OpCost {
                    compute_us: 1_000_000,
                    read_store_bytes: 64e6,
                    output_bytes: 0.0,
                },
            )
            .set(
                grad.op_id(),
                OpCost {
                    compute_us: 2_000_000,
                    read_store_bytes: 0.0,
                    output_bytes: 50e6,
                },
            )
            .set(
                agg.op_id(),
                OpCost {
                    compute_us: 500_000,
                    read_store_bytes: 0.0,
                    output_bytes: 1e6,
                },
            )
            .set_preagg(agg.op_id(), 0.25);
        let dag = p.build().unwrap();
        let with_agg = simulate(Mode::Pado, &dag, &model, small_config()).unwrap();
        let without = simulate(
            Mode::Pado,
            &dag,
            &model,
            SimConfig {
                partial_aggregation: false,
                ..small_config()
            },
        )
        .unwrap();
        assert!(with_agg.bytes_pushed < without.bytes_pushed * 0.5);
    }

    #[test]
    fn checkpointing_prevents_cascading_recomputation() {
        let (dag, model) = iterative_job(4, 24);
        let config = SimConfig {
            n_transient: 8,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (120 * pado_simcluster::SEC) as f64,
            },
            seed: 21,
            ..SimConfig::default()
        };
        let spark = simulate(Mode::Spark, &dag, &model, config.clone()).unwrap();
        let ckpt = simulate(Mode::SparkCkpt, &dag, &model, config).unwrap();
        assert!(spark.evictions > 0 && ckpt.evictions > 0);
        // Checkpointed gradients survive their producers' evictions, so
        // checkpoint-enabled Spark relaunches fewer tasks than plain
        // Spark — at the cost of the checkpoint traffic.
        assert!(
            ckpt.relaunch_ratio() < spark.relaunch_ratio(),
            "ckpt {} vs spark {}",
            ckpt.relaunch_ratio(),
            spark.relaunch_ratio()
        );
        assert!(ckpt.bytes_checkpointed > 0.0);
    }

    #[test]
    fn sim_engine_direct_construction() {
        let (dag, model) = mr_job(8, 2);
        let plan = pado_core::compiler::compile(&dag).unwrap();
        let engine = SimEngine::new(Mode::Pado, &dag, plan, &model, small_config());
        let metrics = engine.run().unwrap();
        assert_eq!(metrics.tasks_launched, metrics.original_tasks);
    }

    #[test]
    fn stalled_simulation_reports_progress() {
        // A cluster with zero reserved containers cannot place Pado's
        // reserved anchors: the run must stall, not hang.
        let (dag, model) = mr_job(4, 2);
        let config = SimConfig {
            n_transient: 2,
            n_reserved: 0,
            ..SimConfig::default()
        };
        match simulate(Mode::Pado, &dag, &model, config) {
            Err(SimError::Stalled { completed, total }) => {
                assert!(completed < total);
            }
            other => panic!("expected a stall, got {other:?}"),
        }
    }

    #[test]
    fn lifetime_aware_placement_reduces_relaunches() {
        // Iterative job on a half short-lived, half long-lived transient
        // mix: steering the expensive gradient operators to the long pool
        // should cut relaunches versus blind scheduling.
        let (dag, model) = iterative_job(4, 24);
        let base = SimConfig {
            n_transient: 4,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (45 * pado_simcluster::SEC) as f64,
            },
            n_transient_long: 4,
            long_lifetimes: LifetimeDist::Exponential {
                mean_us: (20 * 60 * pado_simcluster::SEC) as f64,
            },
            seed: 5,
            ..SimConfig::default()
        };
        let blind = simulate(Mode::Pado, &dag, &model, base.clone()).unwrap();
        let aware = simulate(
            Mode::Pado,
            &dag,
            &model,
            SimConfig {
                lifetime_aware: true,
                ..base
            },
        )
        .unwrap();
        assert!(
            aware.relaunched_tasks <= blind.relaunched_tasks,
            "aware {} vs blind {}",
            aware.relaunched_tasks,
            blind.relaunched_tasks
        );
    }

    #[test]
    fn relaunch_accounting_counts_extra_attempts() {
        let (dag, model) = mr_job(32, 4);
        let config = SimConfig {
            n_transient: 4,
            n_reserved: 2,
            lifetimes: LifetimeDist::Exponential {
                mean_us: (45 * pado_simcluster::SEC) as f64,
            },
            seed: 3,
            ..SimConfig::default()
        };
        let m = simulate(Mode::Spark, &dag, &model, config).unwrap();
        assert_eq!(
            m.tasks_launched,
            m.original_tasks + m.relaunched_tasks,
            "every launch is a first attempt or a relaunch"
        );
    }
}
