//! Property tests of the fair-share network model: byte conservation,
//! monotone virtual time, and robustness to arbitrary transfer mixes.

use proptest::prelude::*;

use pado_simcluster::network::Due;
use pado_simcluster::Network;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Any mix of transfers completes, conserving every byte, with
    /// completion events in non-decreasing time order.
    #[test]
    fn transfers_conserve_bytes(
        caps in proptest::collection::vec(1u32..1000, 2..10),
        transfers in proptest::collection::vec((0usize..10, 0usize..10, 1u64..1_000_000), 1..60),
    ) {
        let mut n = Network::new();
        let nodes: Vec<_> = caps
            .iter()
            .map(|&c| n.add_node(c as f64, c as f64))
            .collect();
        let mut pending: Vec<Due> = Vec::new();
        let mut expected = 0.0;
        let upsert = |pending: &mut Vec<Due>, dues: Vec<Due>| {
            for d in dues {
                pending.retain(|p| p.id != d.id);
                pending.push(d);
            }
        };
        for &(s, d, bytes) in &transfers {
            let src = nodes[s % nodes.len()];
            let dst = nodes[d % nodes.len()];
            expected += (bytes as f64).max(1.0);
            let (_, dues) = n.start(0, src, dst, bytes as f64);
            upsert(&mut pending, dues);
        }
        let mut now = 0u64;
        let mut guard = 0;
        while n.active() > 0 {
            guard += 1;
            prop_assert!(guard < 100_000, "network failed to drain");
            pending.sort_by_key(|p| p.at);
            let due = pending.remove(0);
            prop_assert!(due.at >= now, "time went backwards");
            now = due.at;
            if let Ok(re) = n.complete(due.at, due.id, due.gen) {
                upsert(&mut pending, re);
            }
        }
        let moved = n.bytes_completed;
        prop_assert!(
            (moved - expected).abs() <= expected * 1e-6 + 1.0,
            "moved {moved}, expected {expected}"
        );
    }

    /// Cancelling a node mid-flight loses only that node's transfers; the
    /// rest still complete.
    #[test]
    fn cancellation_spares_unrelated_transfers(
        seed_bytes in 1u64..100_000,
        cancel_at in 1u64..1000,
    ) {
        let mut n = Network::new();
        let a = n.add_node(100.0, 100.0);
        let b = n.add_node(100.0, 100.0);
        let c = n.add_node(100.0, 100.0);
        let d = n.add_node(100.0, 100.0);
        let (doomed, _) = n.start(0, a, b, 1e9);
        let (survivor, dues) = n.start(0, c, d, seed_bytes as f64);
        let (victims, _) = n.cancel_node(cancel_at.min(dues[0].at.saturating_sub(1)), b);
        prop_assert_eq!(victims, vec![doomed]);
        prop_assert!(n.generation(survivor).is_some() || n.active() == 0);
    }
}
