//! The simulated datacenter: containers, virtual clock, event queue, and
//! the transient-container eviction process (§2.1, §5.1.1).
//!
//! Engines drive a [`Cluster`] by scheduling timer events (task
//! completions) and transfers (data movement), and react to the events the
//! cluster delivers — including evictions sampled from a lifetime
//! distribution. Whenever a transient container is evicted the resource
//! manager immediately provides a replacement with a fresh lifetime,
//! matching the paper's experimental setup.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist::LifetimeDist;
use crate::network::{Due, Network, NodeId, TransferId};

/// Container identifier; also the container's node id in the network
/// (each container runs on its own node, as in the paper's EC2 setup).
pub type ContainerId = usize;

/// Microseconds of virtual time.
pub type SimTime = u64;

/// One millisecond in simulation time units.
pub const MS: u64 = 1_000;
/// One second in simulation time units.
pub const SEC: u64 = 1_000_000;
/// One minute in simulation time units.
pub const MIN: u64 = 60 * SEC;

/// Container kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Eviction-prone container on harvested resources.
    Transient,
    /// Eviction-free container.
    Reserved,
    /// External storage endpoint (e.g. the S3-like input store); never
    /// evicted, has no task slots.
    Store,
    /// The job master / driver process's container; never evicted.
    Master,
}

/// A container (one per node).
#[derive(Debug, Clone)]
pub struct Container {
    /// Container id == network node id.
    pub id: ContainerId,
    /// Kind.
    pub kind: Kind,
    /// Task slots (cores).
    pub slots: usize,
    /// Whether the container is alive.
    pub alive: bool,
    /// When the container was provided.
    pub born: SimTime,
    /// Transient pool index (lifetime class); 0 for the default pool and
    /// for non-transient containers.
    pub pool: usize,
}

/// Link and slot characteristics for one container class.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Task slots (cores).
    pub slots: usize,
    /// Uplink bandwidth, bytes/µs.
    pub up: f64,
    /// Downlink bandwidth, bytes/µs.
    pub down: f64,
}

impl NodeSpec {
    /// A node spec from gigabits per second and a core count.
    pub fn from_gbps(slots: usize, gbps: f64) -> Self {
        // 1 Gbps = 125 MB/s = 125 bytes/µs.
        NodeSpec {
            slots,
            up: 125.0 * gbps,
            down: 125.0 * gbps,
        }
    }
}

/// Events delivered to the engine.
#[derive(Debug)]
pub enum Event<E> {
    /// A timer the engine scheduled.
    Timer(E),
    /// A transfer the engine started has completed.
    TransferDone {
        /// The transfer.
        id: TransferId,
        /// The engine's tag for it.
        tag: E,
    },
    /// A transfer died because one of its endpoints was evicted.
    TransferFailed {
        /// The transfer.
        id: TransferId,
        /// The engine's tag for it.
        tag: E,
    },
    /// A transient container was evicted.
    Evicted(ContainerId),
    /// A replacement container came online.
    ContainerAdded(ContainerId),
}

#[derive(Debug)]
enum Item<E> {
    Timer(E),
    TransferDue(Due),
    Eviction(ContainerId),
    TransferFailed { id: TransferId, tag: E },
    ContainerAdded(ContainerId),
}

struct QEntry<E> {
    at: SimTime,
    seq: u64,
    item: Item<E>,
}

impl<E> PartialEq for QEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QEntry<E> {}
impl<E> PartialOrd for QEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for QEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated cluster.
pub struct Cluster<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QEntry<E>>>,
    network: Network,
    containers: Vec<Container>,
    transfer_tags: HashMap<TransferId, E>,
    /// Transient pools: (node spec, lifetime distribution) per lifetime
    /// class. Pool 0 is the default; extra pools model resources with
    /// longer or shorter predicted lifetimes (§6 of the paper).
    pools: Vec<(NodeSpec, LifetimeDist)>,
    rng: StdRng,
    /// Count of evictions that occurred.
    pub evictions: usize,
}

impl<E> Cluster<E> {
    /// Creates a cluster with one external store node plus the given
    /// transient and reserved containers.
    pub fn new(
        n_transient: usize,
        n_reserved: usize,
        transient: NodeSpec,
        reserved: NodeSpec,
        store: NodeSpec,
        lifetimes: LifetimeDist,
        seed: u64,
    ) -> Self {
        let mut cluster = Cluster {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            network: Network::new(),
            containers: Vec::new(),
            transfer_tags: HashMap::new(),
            pools: vec![(transient, lifetimes)],
            rng: StdRng::seed_from_u64(seed),
            evictions: 0,
        };
        cluster.add_container(Kind::Store, store, 0);
        cluster.add_container(Kind::Master, reserved, 0);
        for _ in 0..n_reserved {
            cluster.add_container(Kind::Reserved, reserved, 0);
        }
        for _ in 0..n_transient {
            cluster.add_container(Kind::Transient, transient, 0);
        }
        cluster
    }

    /// Registers an additional transient pool with its own node spec and
    /// lifetime distribution — e.g. harvested resources predicted to live
    /// longer (Harvest-style classes, §6). Returns the new containers.
    pub fn add_transient_pool(
        &mut self,
        n: usize,
        spec: NodeSpec,
        lifetimes: LifetimeDist,
    ) -> Vec<ContainerId> {
        self.pools.push((spec, lifetimes));
        let pool = self.pools.len() - 1;
        (0..n)
            .map(|_| self.add_container(Kind::Transient, spec, pool))
            .collect()
    }

    /// Alive transient containers of one pool, in id order.
    pub fn alive_in_pool(&self, pool: usize) -> Vec<ContainerId> {
        self.containers
            .iter()
            .filter(|c| c.alive && c.kind == Kind::Transient && c.pool == pool)
            .map(|c| c.id)
            .collect()
    }

    /// The external store's node id.
    pub const STORE: ContainerId = 0;

    /// The master/driver node id.
    pub const MASTER: ContainerId = 1;

    /// Current virtual time, microseconds.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// All containers (including dead ones and the store).
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// One container by id.
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id]
    }

    /// Alive containers of a kind, in id order.
    pub fn alive(&self, kind: Kind) -> Vec<ContainerId> {
        self.containers
            .iter()
            .filter(|c| c.alive && c.kind == kind)
            .map(|c| c.id)
            .collect()
    }

    fn add_container(&mut self, kind: Kind, spec: NodeSpec, pool: usize) -> ContainerId {
        let node = self.network.add_node(spec.up, spec.down);
        debug_assert_eq!(node, self.containers.len());
        let id = node;
        self.containers.push(Container {
            id,
            kind,
            slots: spec.slots,
            alive: true,
            born: self.now,
            pool,
        });
        if kind == Kind::Transient {
            if let Some(lt) = self.pools[pool].1.sample(&mut self.rng) {
                self.push(self.now + lt.max(1), Item::Eviction(id));
            }
        }
        id
    }

    fn push(&mut self, at: SimTime, item: Item<E>) {
        self.seq += 1;
        self.queue.push(Reverse(QEntry {
            at,
            seq: self.seq,
            item,
        }));
    }

    /// Schedules a timer event at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        self.push(at.max(self.now), Item::Timer(ev));
    }

    /// Schedules a deterministic eviction of a specific container at an
    /// absolute time (for scripted experiments; no-op if the container is
    /// already dead by then).
    pub fn schedule_eviction(&mut self, at: SimTime, container: ContainerId) {
        self.push(at.max(self.now), Item::Eviction(container));
    }

    /// Schedules a timer event `delay` microseconds from now.
    pub fn schedule_after(&mut self, delay: u64, ev: E) {
        self.push(self.now + delay, Item::Timer(ev));
    }

    /// Starts a transfer; `tag` is handed back on completion or failure.
    pub fn start_transfer(&mut self, src: NodeId, dst: NodeId, bytes: f64, tag: E) -> TransferId {
        let (id, dues) = self.network.start(self.now, src, dst, bytes);
        self.transfer_tags.insert(id, tag);
        for due in dues {
            self.push(due.at, Item::TransferDue(due));
        }
        id
    }

    /// Total bytes moved to completion so far.
    pub fn bytes_transferred(&self) -> f64 {
        self.network.bytes_completed
    }

    /// Pops and processes the next event, if any.
    ///
    /// Internal events (stale transfer re-rates) are absorbed; the method
    /// returns the next *engine-visible* event or `None` when the
    /// simulation has drained.
    pub fn next_event(&mut self) -> Option<Event<E>> {
        while let Some(Reverse(entry)) = self.queue.pop() {
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = self.now.max(entry.at);
            match entry.item {
                Item::Timer(ev) => return Some(Event::Timer(ev)),
                Item::TransferDue(due) => {
                    match self.network.complete(self.now, due.id, due.gen) {
                        Ok(dues) => {
                            for d in dues {
                                self.push(d.at, Item::TransferDue(d));
                            }
                            let tag = self
                                .transfer_tags
                                .remove(&due.id)
                                .expect("completed transfer has a tag");
                            return Some(Event::TransferDone { id: due.id, tag });
                        }
                        Err(()) => continue, // Stale generation.
                    }
                }
                Item::Eviction(id) => {
                    if !self.containers[id].alive {
                        continue;
                    }
                    if let Some(ev) = self.evict_now(id) {
                        return Some(ev);
                    }
                }
                Item::TransferFailed { id, tag } => {
                    return Some(Event::TransferFailed { id, tag });
                }
                Item::ContainerAdded(id) => return Some(Event::ContainerAdded(id)),
            }
        }
        None
    }

    /// Evicts a container immediately (also used by the scheduled
    /// eviction process). Returns the eviction event to deliver, with any
    /// transfer-failure events queued behind it, or `None` if the
    /// container was already dead.
    pub fn evict_now(&mut self, id: ContainerId) -> Option<Event<E>> {
        if !self.containers[id].alive
            || matches!(self.containers[id].kind, Kind::Store | Kind::Master)
        {
            return None;
        }
        self.containers[id].alive = false;
        self.evictions += 1;
        let (victims, dues) = self.network.cancel_node(self.now, id);
        for d in dues {
            self.push(d.at, Item::TransferDue(d));
        }
        // Deliver transfer failures right after the eviction event.
        for v in victims {
            if let Some(tag) = self.transfer_tags.remove(&v) {
                self.push(self.now, Item::TransferFailed { id: v, tag });
            }
        }
        // The resource manager immediately provides a replacement with a
        // fresh lifetime (§5.1.1), drawn from the same pool.
        let kind = self.containers[id].kind;
        if kind == Kind::Transient {
            let pool = self.containers[id].pool;
            let spec = self.pools[pool].0;
            let new_id = self.add_container(Kind::Transient, spec, pool);
            self.push(self.now, Item::ContainerAdded(new_id));
        }
        Some(Event::Evicted(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(lifetimes: LifetimeDist) -> Cluster<u32> {
        Cluster::new(
            2,
            1,
            NodeSpec::from_gbps(4, 1.0),
            NodeSpec::from_gbps(4, 1.0),
            NodeSpec::from_gbps(0, 10.0),
            lifetimes,
            42,
        )
    }

    #[test]
    fn layout_store_then_reserved_then_transient() {
        let c = small_cluster(LifetimeDist::None);
        assert_eq!(c.container(Cluster::<u32>::STORE).kind, Kind::Store);
        assert_eq!(c.container(Cluster::<u32>::MASTER).kind, Kind::Master);
        assert_eq!(c.alive(Kind::Reserved), vec![2]);
        assert_eq!(c.alive(Kind::Transient), vec![3, 4]);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut c = small_cluster(LifetimeDist::None);
        c.schedule_at(500, 2);
        c.schedule_at(100, 1);
        c.schedule_after(900, 3);
        let mut seen = Vec::new();
        while let Some(ev) = c.next_event() {
            if let Event::Timer(x) = ev {
                seen.push((c.now(), x));
            }
        }
        assert_eq!(seen, vec![(100, 1), (500, 2), (900, 3)]);
    }

    #[test]
    fn transfer_completes_with_tag() {
        let mut c = small_cluster(LifetimeDist::None);
        // 1 Gbps = 125 bytes/us; 125_000 bytes -> 1000 us.
        let id = c.start_transfer(3, 2, 125_000.0, 7);
        match c.next_event() {
            Some(Event::TransferDone { id: done, tag }) => {
                assert_eq!(done, id);
                assert_eq!(tag, 7);
                assert_eq!(c.now(), 1000);
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn eviction_replaces_container_and_fails_transfers() {
        let mut c = small_cluster(LifetimeDist::Exponential { mean_us: 10_000.0 });
        let t = c.start_transfer(3, 2, 1e12, 99); // Will not finish in time.
        let mut evicted = Vec::new();
        let mut failed = Vec::new();
        let mut added = Vec::new();
        for _ in 0..6 {
            match c.next_event() {
                Some(Event::Evicted(id)) => evicted.push(id),
                Some(Event::TransferFailed { id, tag }) => {
                    failed.push(id);
                    assert_eq!(tag, 99);
                }
                Some(Event::ContainerAdded(id)) => added.push(id),
                Some(_) => {}
                None => break,
            }
            if !added.is_empty() && !failed.is_empty() {
                break;
            }
        }
        assert!(evicted.contains(&3) || evicted.contains(&4));
        if evicted.contains(&3) {
            assert_eq!(failed, vec![t]);
        }
        assert!(!added.is_empty());
        // Replacement keeps the transient pool size constant.
        assert_eq!(c.alive(Kind::Transient).len(), 2);
    }

    #[test]
    fn manual_eviction_of_reserved_is_possible_but_not_replaced() {
        let mut c = small_cluster(LifetimeDist::None);
        assert!(c.evict_now(2).is_some());
        assert!(c.alive(Kind::Reserved).is_empty());
        assert!(c.evict_now(2).is_none(), "already dead");
        assert!(c.evict_now(Cluster::<u32>::STORE).is_none(), "store immune");
        assert!(
            c.evict_now(Cluster::<u32>::MASTER).is_none(),
            "master immune"
        );
    }

    #[test]
    fn replacement_containers_get_fresh_ids() {
        let mut c = small_cluster(LifetimeDist::Exponential { mean_us: 1000.0 });
        let before = c.containers().len();
        // Drain a few evictions.
        let mut steps = 0;
        while steps < 10 {
            match c.next_event() {
                Some(Event::Evicted(_)) => steps += 1,
                Some(_) => {}
                None => break,
            }
        }
        assert!(c.containers().len() > before);
        // Dead containers stay dead; alive count is stable.
        assert_eq!(c.alive(Kind::Transient).len(), 2);
        assert_eq!(c.evictions, steps);
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn extra_pool_containers_are_tagged_and_replaced_within_pool() {
        let spec = NodeSpec::from_gbps(4, 1.0);
        let mut c: Cluster<u32> = Cluster::new(
            2,
            1,
            spec,
            spec,
            NodeSpec::from_gbps(0, 10.0),
            LifetimeDist::None,
            9,
        );
        let long = c.add_transient_pool(3, spec, LifetimeDist::Exponential { mean_us: 5_000.0 });
        assert_eq!(long.len(), 3);
        assert_eq!(c.alive_in_pool(0).len(), 2);
        assert_eq!(c.alive_in_pool(1).len(), 3);
        for &id in &long {
            assert_eq!(c.container(id).pool, 1);
        }
        // Pool-1 containers evict (pool 0 never does) and are replaced
        // within their own pool.
        let mut evictions = 0;
        while evictions < 5 {
            match c.next_event() {
                Some(Event::Evicted(id)) => {
                    assert_eq!(c.container(id).pool, 1);
                    evictions += 1;
                }
                Some(_) => {}
                None => break,
            }
        }
        assert_eq!(c.alive_in_pool(0).len(), 2);
        assert_eq!(c.alive_in_pool(1).len(), 3);
    }
}
