//! Lifetime distributions for transient containers.
//!
//! The paper derives empirical CDFs of transient container lifetimes from
//! a datacenter trace (Figure 1) and drives the simulated cluster's
//! eviction process with them (§5.1.1). [`EmpiricalDist`] holds such a
//! CDF as a sorted sample set and samples by inverse transform.

use rand::Rng;

/// How transient container lifetimes are drawn.
#[derive(Debug, Clone)]
pub enum LifetimeDist {
    /// Containers are never evicted (the paper's "none" eviction rate).
    None,
    /// Lifetimes drawn from an empirical CDF (microseconds).
    Empirical(EmpiricalDist),
    /// Exponential lifetimes with the given mean (microseconds); handy
    /// for property tests.
    Exponential {
        /// Mean lifetime in microseconds.
        mean_us: f64,
    },
}

impl LifetimeDist {
    /// Draws a lifetime, or `None` when containers are never evicted.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<u64> {
        match self {
            LifetimeDist::None => None,
            LifetimeDist::Empirical(d) => Some(d.sample(rng)),
            LifetimeDist::Exponential { mean_us } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Some((-mean_us * u.ln()).max(1.0) as u64)
            }
        }
    }
}

/// An empirical distribution over `u64` samples (inverse-CDF sampling
/// with linear interpolation between order statistics).
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    sorted: Vec<u64>,
}

impl EmpiricalDist {
    /// Builds a distribution from observed samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty; an eviction process needs at least
    /// one observed lifetime.
    pub fn new(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        samples.sort_unstable();
        EmpiricalDist { sorted: samples }
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.quantile(u)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated.
    pub fn quantile(&self, q: f64) -> u64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        let a = self.sorted[lo] as f64;
        let b = self.sorted[hi] as f64;
        (a + (b - a) * frac).round() as u64
    }

    /// The empirical CDF value at `x`: the fraction of samples `<= x`.
    pub fn cdf(&self, x: u64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantiles_interpolate() {
        let d = EmpiricalDist::new(vec![10, 20, 30, 40, 50]);
        assert_eq!(d.quantile(0.0), 10);
        assert_eq!(d.quantile(1.0), 50);
        assert_eq!(d.quantile(0.5), 30);
        assert_eq!(d.quantile(0.25), 20);
        assert_eq!(d.quantile(0.125), 15);
    }

    #[test]
    fn cdf_counts_fraction_below() {
        let d = EmpiricalDist::new(vec![1, 2, 3, 4]);
        assert_eq!(d.cdf(0), 0.0);
        assert_eq!(d.cdf(2), 0.5);
        assert_eq!(d.cdf(4), 1.0);
    }

    #[test]
    fn samples_stay_in_range() {
        let d = EmpiricalDist::new(vec![5, 7, 11]);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((5..=11).contains(&s));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let dist = LifetimeDist::Exponential { mean_us: 1000.0 };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| dist.sample(&mut rng).unwrap()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean was {mean}");
    }

    #[test]
    fn none_never_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(LifetimeDist::None.sample(&mut rng).is_none());
    }

    #[test]
    fn single_sample_dist_is_constant() {
        let d = EmpiricalDist::new(vec![99]);
        assert_eq!(d.quantile(0.3), 99);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }
}
