//! A discrete-event datacenter simulator for transient-resource research.
//!
//! This crate stands in for the paper's AWS EC2 / YARN evaluation cluster
//! (§5.1.1): containers with task slots, per-node fair-share network
//! links, an external input store, and a transient-container eviction
//! process driven by empirical lifetime CDFs. Execution engines (Pado and
//! the Spark baselines in `pado-engines`) schedule timers and transfers
//! against a [`Cluster`] and react to evictions it delivers.
#![warn(missing_docs)]

pub mod cluster;
pub mod dist;
pub mod network;

pub use cluster::{Cluster, Container, ContainerId, Event, Kind, NodeSpec, SimTime, MIN, MS, SEC};
pub use dist::{EmpiricalDist, LifetimeDist};
pub use network::{Network, NodeId, TransferId};
