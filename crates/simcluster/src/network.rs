//! A fair-share network model.
//!
//! Every node has an uplink and a downlink capacity. An active transfer's
//! rate is `min(up(src)/active_up(src), down(dst)/active_down(dst))` —
//! count-based fair sharing. The approximation keeps a transfer's rate a
//! function of only its two endpoints' active counts, so a start or
//! completion only re-rates transfers touching those endpoints. This
//! captures the bottleneck the paper's evaluation hinges on: a handful of
//! reserved nodes serving (or absorbing) traffic for dozens of transient
//! nodes.

use std::collections::HashMap;

/// Node identifier within a simulation.
pub type NodeId = usize;

/// Transfer identifier.
pub type TransferId = u64;

#[derive(Debug, Clone)]
struct Tr {
    src: NodeId,
    dst: NodeId,
    remaining: f64,
    rate: f64,
    last: u64,
    gen: u64,
}

/// The network state: per-node link capacities and active transfers.
#[derive(Debug, Default)]
pub struct Network {
    /// (uplink, downlink) capacity per node, bytes per microsecond.
    caps: Vec<(f64, f64)>,
    transfers: HashMap<TransferId, Tr>,
    up_count: Vec<usize>,
    down_count: Vec<usize>,
    next_id: TransferId,
    /// Total bytes moved to completion (accounting).
    pub bytes_completed: f64,
}

/// A transfer whose completion event must be (re)scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Due {
    /// The transfer.
    pub id: TransferId,
    /// Absolute completion time, microseconds.
    pub at: u64,
    /// Generation guard: stale events must be ignored.
    pub gen: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a node with the given link capacities (bytes per microsecond)
    /// and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacities.
    pub fn add_node(&mut self, up: f64, down: f64) -> NodeId {
        assert!(up > 0.0 && down > 0.0, "link capacities must be positive");
        self.caps.push((up, down));
        self.up_count.push(0);
        self.down_count.push(0);
        self.caps.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Number of active transfers.
    pub fn active(&self) -> usize {
        self.transfers.len()
    }

    /// Starts a transfer of `bytes` from `src` to `dst` at time `now`.
    /// Returns the new transfer id and every completion event to
    /// (re)schedule — the new transfer's and those of transfers whose
    /// rate changed.
    pub fn start(
        &mut self,
        now: u64,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
    ) -> (TransferId, Vec<Due>) {
        let id = self.next_id;
        self.next_id += 1;
        self.advance_touching(now, &[src, dst]);
        self.up_count[src] += 1;
        self.down_count[dst] += 1;
        self.transfers.insert(
            id,
            Tr {
                src,
                dst,
                remaining: bytes.max(1.0),
                rate: 0.0,
                last: now,
                gen: 0,
            },
        );
        let dues = self.rerate_touching(&[src, dst]);
        (id, dues)
    }

    /// Attempts to complete a transfer at `now` for the event generation
    /// `gen`. Returns `Ok(reschedules)` with follow-up events when the
    /// transfer genuinely finished, or `Err(())` when the event was stale
    /// (rate changed since it was scheduled) or the transfer is gone.
    #[allow(clippy::result_unit_err)]
    pub fn complete(&mut self, now: u64, id: TransferId, gen: u64) -> Result<Vec<Due>, ()> {
        let (src, dst) = match self.transfers.get(&id) {
            Some(tr) if tr.gen == gen => (tr.src, tr.dst),
            _ => return Err(()),
        };
        self.advance_touching(now, &[src, dst]);
        let tr = &self.transfers[&id];
        if tr.remaining > 1e-6 {
            // The event fired early relative to the re-rated schedule;
            // stale by construction (gen should have caught it), be safe.
            return Err(());
        }
        // Progress (and byte accounting) was brought to `now` above.
        self.transfers.remove(&id).expect("transfer exists");
        self.up_count[src] -= 1;
        self.down_count[dst] -= 1;
        Ok(self.rerate_touching(&[src, dst]))
    }

    /// Cancels every transfer touching `node` (its container was evicted).
    /// Returns the cancelled ids plus reschedules for affected survivors.
    pub fn cancel_node(&mut self, now: u64, node: NodeId) -> (Vec<TransferId>, Vec<Due>) {
        let victims: Vec<TransferId> = self
            .transfers
            .iter()
            .filter(|(_, tr)| tr.src == node || tr.dst == node)
            .map(|(&id, _)| id)
            .collect();
        let mut touched = vec![node];
        for id in &victims {
            let tr = &self.transfers[id];
            touched.push(tr.src);
            touched.push(tr.dst);
        }
        self.advance_touching(now, &touched);
        for id in &victims {
            let tr = self.transfers.remove(id).expect("victim exists");
            self.up_count[tr.src] -= 1;
            self.down_count[tr.dst] -= 1;
        }
        let dues = self.rerate_touching(&touched);
        (victims, dues)
    }

    /// The generation of a transfer, if active.
    pub fn generation(&self, id: TransferId) -> Option<u64> {
        self.transfers.get(&id).map(|t| t.gen)
    }

    /// Advances the progress of transfers touching any of `nodes` to `now`.
    fn advance_touching(&mut self, now: u64, nodes: &[NodeId]) {
        for tr in self.transfers.values_mut() {
            if nodes.contains(&tr.src) || nodes.contains(&tr.dst) {
                let dt = now.saturating_sub(tr.last) as f64;
                let moved = (tr.rate * dt).min(tr.remaining);
                tr.remaining -= moved;
                self.bytes_completed += moved;
                tr.last = now;
            }
        }
    }

    /// Recomputes rates of transfers touching any of `nodes`; returns new
    /// completion events for those whose rate changed.
    fn rerate_touching(&mut self, nodes: &[NodeId]) -> Vec<Due> {
        let mut dues = Vec::new();
        let caps = &self.caps;
        let up_count = &self.up_count;
        let down_count = &self.down_count;
        for (&id, tr) in self.transfers.iter_mut() {
            if !(nodes.contains(&tr.src) || nodes.contains(&tr.dst)) {
                continue;
            }
            let up_share = caps[tr.src].0 / up_count[tr.src].max(1) as f64;
            let down_share = caps[tr.dst].1 / down_count[tr.dst].max(1) as f64;
            let rate = up_share.min(down_share);
            if (rate - tr.rate).abs() > 1e-12 || tr.rate == 0.0 {
                tr.rate = rate;
                tr.gen += 1;
                let eta = (tr.remaining / rate).ceil() as u64;
                dues.push(Due {
                    id,
                    at: tr.last + eta.max(1),
                    gen: tr.gen,
                });
            }
        }
        dues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_uses_min_of_links() {
        let mut n = Network::new();
        let a = n.add_node(10.0, 10.0);
        let b = n.add_node(10.0, 5.0);
        let (_, dues) = n.start(0, a, b, 1000.0);
        assert_eq!(dues.len(), 1);
        // Bottleneck is b's downlink: 1000 / 5 = 200 us.
        assert_eq!(dues[0].at, 200);
    }

    #[test]
    fn sharing_halves_rates_and_completion_reschedules() {
        let mut n = Network::new();
        let a = n.add_node(10.0, 10.0);
        let b = n.add_node(10.0, 10.0);
        let (t1, d1) = n.start(0, a, b, 1000.0);
        assert_eq!(d1[0].at, 100);
        // A second transfer on the same pair halves both rates.
        let (_t2, d2) = n.start(0, a, b, 1000.0);
        assert_eq!(d2.len(), 2, "both transfers re-rated");
        for d in &d2 {
            assert_eq!(d.at, 200);
        }
        // The original completion event is now stale.
        let stale = d1[0];
        assert!(n.complete(stale.at, t1, stale.gen).is_err());
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let mut n = Network::new();
        let a = n.add_node(10.0, 10.0);
        let b = n.add_node(10.0, 10.0);
        let (t1, _) = n.start(0, a, b, 500.0);
        let (_t2, d2) = n.start(0, a, b, 1000.0);
        // Both run at 5 B/us. t1 finishes at 100us.
        let due1 = d2.iter().find(|d| d.id == t1).copied().unwrap();
        assert_eq!(due1.at, 100);
        let re = n.complete(100, t1, due1.gen).unwrap();
        // t2 moved 500 bytes by then; the remaining 500 now run at 10.
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].at, 150);
        let done = n.complete(150, re[0].id, re[0].gen);
        assert!(done.is_ok());
        assert_eq!(n.active(), 0);
        assert!((n.bytes_completed - 1500.0).abs() < 1.0);
    }

    #[test]
    fn cancel_node_kills_its_transfers() {
        let mut n = Network::new();
        let a = n.add_node(10.0, 10.0);
        let b = n.add_node(10.0, 10.0);
        let c = n.add_node(10.0, 10.0);
        let (t1, _) = n.start(0, a, b, 1000.0);
        let (t2, _) = n.start(0, a, c, 1000.0);
        let (victims, dues) = n.cancel_node(50, b);
        assert_eq!(victims, vec![t1]);
        assert_eq!(n.active(), 1);
        // The survivor t2 regains a's full uplink.
        assert_eq!(dues.len(), 1);
        assert_eq!(dues[0].id, t2);
    }

    #[test]
    fn many_small_transfers_conserve_bytes() {
        let mut n = Network::new();
        let src = n.add_node(100.0, 100.0);
        let dst = n.add_node(100.0, 100.0);
        let mut pending: Vec<Due> = Vec::new();
        let mut total = 0.0;
        for i in 0..20 {
            let bytes = 100.0 * (i + 1) as f64;
            total += bytes;
            let (_, dues) = n.start(0, src, dst, bytes);
            for d in dues {
                pending.retain(|p| p.id != d.id);
                pending.push(d);
            }
        }
        // Drain events in time order until everything completes.
        let mut guard = 0;
        while n.active() > 0 && guard < 10_000 {
            guard += 1;
            pending.sort_by_key(|d| d.at);
            let d = pending.remove(0);
            if let Ok(re) = n.complete(d.at, d.id, d.gen) {
                for r in re {
                    pending.retain(|p| p.id != r.id);
                    pending.push(r);
                }
            }
        }
        assert_eq!(n.active(), 0);
        assert!(
            (n.bytes_completed - total).abs() < total * 1e-6,
            "moved {} of {}",
            n.bytes_completed,
            total
        );
    }
}
