//! Property tests of the wire codecs and the row↔columnar duality: for
//! arbitrary `Value`s (bit-pattern floats — NaNs, infinities, signed
//! zeros — empty strings, nested pairs/lists, heterogeneous mixes),
//!
//! - `Value::size_bytes` equals the exact encoded length,
//! - the per-record codec round-trips batches bit-identically,
//! - a block round-trips rows → columns → encoded bytes → block → rows
//!   without changing a record, whichever side it was seeded from,
//! - re-encoding a decoded block reproduces the same bytes (the
//!   determinism the store's byte accounting and the journal matrices
//!   rely on).

use std::sync::Arc;

use pado_dag::codec::{decode_batch, encode, encode_batch};
use pado_dag::colcodec::{decode_block, encode_block};
use pado_dag::{block_from_columns, block_from_vec, column, Value};
use proptest::prelude::*;

fn scalar_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::from),
        // Arbitrary bit patterns: NaN payloads, infinities, subnormals.
        any::<f64>().prop_map(Value::from),
        "[a-z0-9 ]{0,12}".prop_map(Value::from),
        proptest::collection::vec(0u8..255, 0..12).prop_map(|b| Value::Bytes(Arc::from(&b[..]))),
    ]
    .boxed()
}

fn value_strategy() -> BoxedStrategy<Value> {
    scalar_value().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(k, v)| Value::pair(k, v)),
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::list),
            proptest::collection::vec(any::<f64>(), 0..5).prop_map(Value::vector),
        ]
    })
}

/// Rows that analyze to a column layout: one scalar kind throughout, or
/// pairs of two fixed scalar kinds (possibly empty).
fn columnar_rows() -> BoxedStrategy<Vec<Value>> {
    let i64s = proptest::collection::vec(any::<i64>(), 0..40)
        .prop_map(|v| v.into_iter().map(Value::from).collect::<Vec<_>>());
    let f64s = proptest::collection::vec(any::<f64>(), 0..40)
        .prop_map(|v| v.into_iter().map(Value::from).collect::<Vec<_>>());
    let strs = proptest::collection::vec("[a-z]{0,8}", 0..40)
        .prop_map(|v| v.into_iter().map(Value::from).collect::<Vec<_>>());
    let pairs = proptest::collection::vec((any::<i64>(), any::<f64>()), 0..40).prop_map(|v| {
        v.into_iter()
            .map(|(k, x)| Value::pair(Value::from(k % 50), Value::from(x)))
            .collect::<Vec<_>>()
    });
    prop_oneof![i64s, f64s, strs, pairs].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `size_bytes` is the exact encoded length — the store's byte
    /// accounting and the codec agree on every value shape.
    #[test]
    fn size_bytes_equals_encoded_length(v in value_strategy()) {
        let bytes = encode(&v).expect("encodes");
        prop_assert_eq!(v.size_bytes(), bytes.len(), "size_bytes lies for {:?}", v);
    }

    /// The per-record batch codec round-trips bit-identically (NaN
    /// payloads included: equality here is total-order, not IEEE).
    #[test]
    fn batch_codec_roundtrips(rows in proptest::collection::vec(value_strategy(), 0..20)) {
        let bytes = encode_batch(&rows).expect("encodes");
        let back = decode_batch(&bytes).expect("decodes");
        prop_assert_eq!(&back, &rows);
    }

    /// Arbitrary (typically heterogeneous) rows round-trip through the
    /// block codec's row-fallback layout, and re-encoding the decoded
    /// block reproduces the same bytes.
    #[test]
    fn block_codec_roundtrips_any_rows(rows in proptest::collection::vec(value_strategy(), 0..16)) {
        let block = block_from_vec(rows.clone());
        let bytes = encode_block(&block).expect("encodes");
        prop_assert_eq!(block.encoded_len(), bytes.len());
        let back = decode_block(&bytes).expect("decodes");
        prop_assert_eq!(back.rows(), &rows[..]);
        prop_assert_eq!(back.encoded_len(), bytes.len());
        prop_assert_eq!(encode_block(&back).expect("re-encodes"), bytes, "codec not deterministic");
    }

    /// Columnar rows survive the full duality cycle: analysis to columns,
    /// column-seeded blocks, the compressed wire format, and back —
    /// byte-identically, from either seed side.
    #[test]
    fn columnar_blocks_roundtrip_from_both_sides(rows in columnar_rows()) {
        let by_rows = block_from_vec(rows.clone());
        let bytes = encode_block(&by_rows).expect("encodes");
        let back = decode_block(&bytes).expect("decodes");
        prop_assert_eq!(back.rows(), &rows[..]);
        prop_assert_eq!(encode_block(&back).expect("re-encodes"), bytes.clone());

        // Seeding from the analyzed columns must produce the same bytes:
        // the layout decision is a function of content, not provenance.
        if let Some(cols) = column::analyze(&rows) {
            let by_cols = block_from_columns(cols);
            prop_assert_eq!(by_cols.rows(), &rows[..]);
            prop_assert_eq!(encode_block(&by_cols).expect("encodes"), bytes.clone());
            prop_assert_eq!(by_cols.raw_len(), by_rows.raw_len());
        } else {
            // Only the empty row set may refuse analysis here.
            prop_assert!(rows.is_empty());
        }
    }

    /// Heterogeneous mixes always fall back to the rows layout and still
    /// round-trip; the decoded block re-analyzes to "no columns" again.
    #[test]
    fn heterogeneous_fallback_roundtrips(
        rows in proptest::collection::vec(scalar_value(), 1..12),
        tail in value_strategy(),
    ) {
        let mut rows = rows;
        rows.push(Value::list(vec![tail])); // lists never columnize
        let block = block_from_vec(rows.clone());
        prop_assert!(block.columns().is_none());
        let bytes = encode_block(&block).expect("encodes");
        let back = decode_block(&bytes).expect("decodes");
        prop_assert!(back.columns().is_none());
        prop_assert_eq!(back.rows(), &rows[..]);
        prop_assert_eq!(encode_block(&back).expect("re-encodes"), bytes);
    }
}
