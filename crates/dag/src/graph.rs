//! The logical DAG: vertices are operators, edges carry dependency types.

use std::collections::VecDeque;

use crate::error::{DagError, Result};
use crate::operator::{DepType, Operator};

/// Identifier of an operator within one [`LogicalDag`] (a dense index).
pub type OpId = usize;

/// A directed, typed edge between two operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Parent operator.
    pub src: OpId,
    /// Child operator.
    pub dst: OpId,
    /// Data-flow dependency type.
    pub dep: DepType,
}

/// A dataflow program as a DAG of operators (§2.2).
///
/// Construction is additive: add operators, then add edges between them.
/// [`LogicalDag::validate`] checks the structural invariants the compiler
/// relies on; [`LogicalDag::topo_sort`] yields a stable topological order
/// (ties broken by insertion order, so compilation is deterministic).
#[derive(Debug, Clone, Default)]
pub struct LogicalDag {
    ops: Vec<Operator>,
    edges: Vec<Edge>,
}

impl LogicalDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        LogicalDag::default()
    }

    /// Adds an operator and returns its id.
    pub fn add_operator(&mut self, op: Operator) -> OpId {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Adds a typed edge.
    ///
    /// # Errors
    ///
    /// Fails on unknown endpoints, self-loops, and duplicate edges.
    pub fn add_edge(&mut self, src: OpId, dst: OpId, dep: DepType) -> Result<()> {
        if src >= self.ops.len() {
            return Err(DagError::UnknownOperator(src));
        }
        if dst >= self.ops.len() {
            return Err(DagError::UnknownOperator(dst));
        }
        if src == dst {
            return Err(DagError::SelfLoop(src));
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(DagError::DuplicateEdge(src, dst));
        }
        self.edges.push(Edge { src, dst, dep });
        Ok(())
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the DAG has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All operator ids, in insertion order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        0..self.ops.len()
    }

    /// The operator with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids obtained from this DAG are
    /// always valid.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id]
    }

    /// Mutable access to an operator (e.g. to set parallelism).
    pub fn op_mut(&mut self, id: OpId) -> &mut Operator {
        &mut self.ops[id]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Incoming edges of `id`, in insertion order.
    pub fn in_edges(&self, id: OpId) -> Vec<Edge> {
        self.edges.iter().copied().filter(|e| e.dst == id).collect()
    }

    /// Outgoing edges of `id`, in insertion order.
    pub fn out_edges(&self, id: OpId) -> Vec<Edge> {
        self.edges.iter().copied().filter(|e| e.src == id).collect()
    }

    /// Parent operator ids of `id`.
    pub fn parents(&self, id: OpId) -> Vec<OpId> {
        self.in_edges(id).iter().map(|e| e.src).collect()
    }

    /// Child operator ids of `id`.
    pub fn children(&self, id: OpId) -> Vec<OpId> {
        self.out_edges(id).iter().map(|e| e.dst).collect()
    }

    /// A stable topological order (Kahn's algorithm, insertion-order ties).
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Cycle`] naming an operator on a cycle.
    pub fn topo_sort(&self) -> Result<Vec<OpId>> {
        let n = self.ops.len();
        let mut in_deg = vec![0usize; n];
        for e in &self.edges {
            in_deg[e.dst] += 1;
        }
        let mut queue: VecDeque<OpId> = (0..n).filter(|&i| in_deg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for e in self.edges.iter().filter(|e| e.src == u) {
                in_deg[e.dst] -= 1;
                if in_deg[e.dst] == 0 {
                    queue.push_back(e.dst);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| in_deg[i] > 0).unwrap_or(0);
            return Err(DagError::Cycle(stuck));
        }
        Ok(order)
    }

    /// Validates the structural invariants the compiler depends on.
    ///
    /// # Errors
    ///
    /// - the DAG is empty;
    /// - a cycle exists;
    /// - a source has in-edges, or a non-source has none;
    /// - a sink has out-edges;
    /// - an operator declares zero parallelism.
    pub fn validate(&self) -> Result<()> {
        if self.ops.is_empty() {
            return Err(DagError::Empty);
        }
        self.topo_sort()?;
        for id in 0..self.ops.len() {
            let op = &self.ops[id];
            let n_in = self.in_edges(id).len();
            if op.kind.is_source() && n_in > 0 {
                return Err(DagError::SourceWithInput(id));
            }
            if !op.kind.is_source() && n_in == 0 {
                return Err(DagError::MissingInput(id));
            }
            if op.kind.is_sink() && !self.out_edges(id).is_empty() {
                return Err(DagError::SinkWithOutput(id));
            }
            if op.parallelism == Some(0) {
                return Err(DagError::ZeroParallelism(id));
            }
        }
        Ok(())
    }

    /// Renders the DAG in Graphviz `dot` format, annotating edge types.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph logical {\n  rankdir=LR;\n");
        for (i, op) in self.ops.iter().enumerate() {
            s.push_str(&format!(
                "  n{} [label=\"{}\\n({})\"];\n",
                i,
                op.name,
                op.kind.label()
            ));
        }
        for e in &self.edges {
            s.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                e.src, e.dst, e.dep
            ));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorKind, SourceKind};
    use crate::udf::{ParDoFn, SourceFn};
    use crate::value::Value;

    fn src() -> Operator {
        Operator::new(
            "src",
            OperatorKind::Source {
                kind: SourceKind::Read,
                f: SourceFn::from_vec(vec![Value::Unit]),
            },
        )
    }

    fn pardo(name: &str) -> Operator {
        Operator::new(
            name,
            OperatorKind::ParDo(ParDoFn::per_element(|v, e| e(v.clone()))),
        )
    }

    #[test]
    fn add_edge_rejects_bad_endpoints() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        assert_eq!(
            g.add_edge(a, 7, DepType::OneToOne),
            Err(DagError::UnknownOperator(7))
        );
        assert_eq!(
            g.add_edge(9, a, DepType::OneToOne),
            Err(DagError::UnknownOperator(9))
        );
        assert_eq!(
            g.add_edge(a, a, DepType::OneToOne),
            Err(DagError::SelfLoop(a))
        );
    }

    #[test]
    fn add_edge_rejects_duplicates() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let b = g.add_operator(pardo("b"));
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        assert_eq!(
            g.add_edge(a, b, DepType::ManyToMany),
            Err(DagError::DuplicateEdge(a, b))
        );
    }

    #[test]
    fn topo_sort_linear_chain() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let b = g.add_operator(pardo("b"));
        let c = g.add_operator(pardo("c"));
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        g.add_edge(b, c, DepType::OneToOne).unwrap();
        assert_eq!(g.topo_sort().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(pardo("a"));
        let b = g.add_operator(pardo("b"));
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        g.add_edge(b, a, DepType::OneToOne).unwrap();
        assert!(matches!(g.topo_sort(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn topo_sort_is_stable_under_diamonds() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let b = g.add_operator(pardo("b"));
        let c = g.add_operator(pardo("c"));
        let d = g.add_operator(pardo("d"));
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        g.add_edge(a, c, DepType::OneToOne).unwrap();
        g.add_edge(b, d, DepType::OneToOne).unwrap();
        g.add_edge(c, d, DepType::ManyToMany).unwrap();
        assert_eq!(g.topo_sort().unwrap(), vec![a, b, c, d]);
    }

    #[test]
    fn validate_catches_source_with_input() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let b = g.add_operator(src());
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        assert_eq!(g.validate(), Err(DagError::SourceWithInput(b)));
    }

    #[test]
    fn validate_catches_missing_input() {
        let mut g = LogicalDag::new();
        g.add_operator(pardo("orphan"));
        assert_eq!(g.validate(), Err(DagError::MissingInput(0)));
    }

    #[test]
    fn validate_catches_empty_and_zero_parallelism() {
        assert_eq!(LogicalDag::new().validate(), Err(DagError::Empty));
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        g.op_mut(a).parallelism = Some(0);
        assert_eq!(g.validate(), Err(DagError::ZeroParallelism(a)));
    }

    #[test]
    fn validate_catches_sink_with_output() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let s = g.add_operator(Operator::new("sink", OperatorKind::Sink));
        let b = g.add_operator(pardo("b"));
        g.add_edge(a, s, DepType::OneToOne).unwrap();
        g.add_edge(s, b, DepType::OneToOne).unwrap();
        assert_eq!(g.validate(), Err(DagError::SinkWithOutput(s)));
    }

    #[test]
    fn in_and_out_edges() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let b = g.add_operator(pardo("b"));
        let c = g.add_operator(pardo("c"));
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        g.add_edge(a, c, DepType::OneToMany).unwrap();
        g.add_edge(b, c, DepType::ManyToMany).unwrap();
        assert_eq!(g.out_edges(a).len(), 2);
        assert_eq!(g.in_edges(c).len(), 2);
        assert_eq!(g.parents(c), vec![a, b]);
        assert_eq!(g.children(a), vec![b, c]);
    }

    #[test]
    fn dot_output_mentions_ops_and_deps() {
        let mut g = LogicalDag::new();
        let a = g.add_operator(src());
        let b = g.add_operator(pardo("map"));
        g.add_edge(a, b, DepType::OneToOne).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("map"));
        assert!(dot.contains("one-to-one"));
    }
}
