//! A compact binary codec for [`Value`] records.
//!
//! The in-process runtime moves records as Rust objects, but a distributed
//! deployment serializes task outputs before pushing them to reserved
//! executors (the paper's implementation extracts output serializers from
//! each Beam `Transform`, §4). This codec is self-describing (one tag
//! byte per node), length-prefixed, and round-trips every [`Value`]
//! exactly — including NaN payloads, which travel as raw bits.

use std::sync::Arc;

use crate::error::{DagError, Result};
use crate::value::Value;

const TAG_UNIT: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BYTES: u8 = 4;
const TAG_PAIR: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_VECTOR: u8 = 7;

/// Writes a 4-byte little-endian length prefix, rejecting lengths that do
/// not fit in `u32`. Every length the codec emits goes through here: a
/// payload past 4 GiB used to wrap silently (`len as u32`) and corrupt
/// the stream for every record after it.
fn write_len(n: usize, out: &mut Vec<u8>) -> Result<()> {
    let n = u32::try_from(n).map_err(|_| DagError::Codec("length exceeds u32::MAX"))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

/// Serializes one record, appending to `out`.
///
/// # Errors
///
/// Fails with [`DagError::Codec`] if any length (string, bytes, list,
/// vector) exceeds `u32::MAX`; `out` may then hold a partial prefix.
pub fn encode_into(v: &Value, out: &mut Vec<u8>) -> Result<()> {
    match v {
        Value::Unit => out.push(TAG_UNIT),
        Value::I64(i) => {
            out.push(TAG_I64);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_len(s.len(), out)?;
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_len(b.len(), out)?;
            out.extend_from_slice(b);
        }
        Value::Pair(k, v) => {
            out.push(TAG_PAIR);
            encode_into(k, out)?;
            encode_into(v, out)?;
        }
        Value::List(l) => {
            out.push(TAG_LIST);
            write_len(l.len(), out)?;
            for item in l.iter() {
                encode_into(item, out)?;
            }
        }
        Value::Vector(xs) => {
            out.push(TAG_VECTOR);
            write_len(xs.len(), out)?;
            for x in xs.iter() {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }
    Ok(())
}

/// Serializes one record into a fresh buffer.
///
/// # Errors
///
/// Fails with [`DagError::Codec`] on a length overflowing `u32`.
pub fn encode(v: &Value) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(v.size_bytes() + 8);
    encode_into(v, &mut out)?;
    Ok(out)
}

/// Serializes a batch of records (a task output partition).
///
/// # Errors
///
/// Fails with [`DagError::Codec`] if the record count or any nested
/// length overflows `u32`.
pub fn encode_batch(records: &[Value]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    write_len(records.len(), &mut out)?;
    for r in records {
        encode_into(r, &mut out)?;
    }
    Ok(out)
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DagError::Codec("truncated input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            TAG_UNIT => Ok(Value::Unit),
            TAG_I64 => Ok(Value::I64(self.u64()? as i64)),
            TAG_F64 => Ok(Value::F64(f64::from_bits(self.u64()?))),
            TAG_STR => {
                let n = self.u32()? as usize;
                let bytes = self.take(n)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| DagError::Codec("invalid utf-8 in string"))?;
                Ok(Value::Str(Arc::from(s)))
            }
            TAG_BYTES => {
                let n = self.u32()? as usize;
                Ok(Value::Bytes(Arc::from(self.take(n)?)))
            }
            TAG_PAIR => {
                let k = self.value()?;
                let v = self.value()?;
                Ok(Value::pair(k, v))
            }
            TAG_LIST => {
                let n = self.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::list(items))
            }
            TAG_VECTOR => {
                let n = self.u32()? as usize;
                let mut xs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    xs.push(f64::from_bits(self.u64()?));
                }
                Ok(Value::vector(xs))
            }
            _ => Err(DagError::Codec("unknown tag")),
        }
    }
}

/// Deserializes one record.
///
/// # Errors
///
/// Fails on truncation, invalid UTF-8, unknown tags, or trailing bytes.
pub fn decode(buf: &[u8]) -> Result<Value> {
    let mut r = Reader { buf, pos: 0 };
    let v = r.value()?;
    if r.pos != buf.len() {
        return Err(DagError::Codec("trailing bytes"));
    }
    Ok(v)
}

/// Deserializes a batch of records.
///
/// # Errors
///
/// Fails on malformed input (see [`decode`]).
pub fn decode_batch(buf: &[u8]) -> Result<Vec<Value>> {
    let mut r = Reader { buf, pos: 0 };
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.value()?);
    }
    if r.pos != buf.len() {
        return Err(DagError::Codec("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let bytes = encode(&v).expect("encodes");
        let back = decode(&bytes).expect("decodes");
        assert_eq!(v, back);
    }

    #[test]
    fn oversized_length_is_an_error_not_a_wrap() {
        // All four variable-length encoders (str/bytes/list/vector) and
        // the batch record count funnel through `write_len`; a value past
        // u32::MAX must refuse to encode rather than silently truncate.
        let mut out = Vec::new();
        assert!(write_len(u32::MAX as usize, &mut out).is_ok());
        let err = write_len(u32::MAX as usize + 1, &mut out).unwrap_err();
        assert!(
            matches!(err, DagError::Codec(msg) if msg.contains("u32")),
            "wrong error: {err}"
        );
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Unit);
        roundtrip(Value::from(i64::MIN));
        roundtrip(Value::from(i64::MAX));
        roundtrip(Value::from(0.0));
        roundtrip(Value::from(-1.5e300));
        roundtrip(Value::from("héllo wörld"));
        roundtrip(Value::from(String::new()));
        roundtrip(Value::Bytes(std::sync::Arc::from(&b"\x00\xff\x7f"[..])));
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
        let bytes = encode(&Value::F64(weird)).unwrap();
        match decode(&bytes).unwrap() {
            Value::F64(x) => assert_eq!(x.to_bits(), weird.to_bits()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        roundtrip(Value::pair(
            Value::from("key"),
            Value::list(vec![
                Value::vector(vec![1.0, 2.0, 3.0]),
                Value::pair(Value::from(1i64), Value::Unit),
                Value::list(vec![]),
            ]),
        ));
    }

    #[test]
    fn batch_roundtrip() {
        let records: Vec<Value> = (0..100)
            .map(|i| Value::pair(Value::from(i), Value::from(i as f64 / 3.0)))
            .collect();
        let bytes = encode_batch(&records).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), records);
        assert_eq!(decode_batch(&encode_batch(&[]).unwrap()).unwrap(), vec![]);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&Value::from("hello")).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Value::Unit).unwrap();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(decode(&[99]).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = vec![TAG_STR];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode(&bytes).is_err());
    }
}
