//! Operators and dependency types of a logical DAG (§2.2 of the paper).

use std::fmt;

use crate::udf::{CombineFn, ParDoFn, SourceFn};

/// The four dependency types between a parent and a child operator.
///
/// The type of an edge determines how parent task outputs flow into child
/// tasks and, crucially, how expensive an eviction of a child task is: a
/// task with a many-to-one or many-to-many in-edge depends on *multiple*
/// parent tasks, so losing it can cascade into many recomputations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepType {
    /// Each parent task feeds exactly one child task and vice versa.
    OneToOne,
    /// Every parent task's output is broadcast to all child tasks.
    OneToMany,
    /// The outputs of all parent tasks are collected into a child task.
    ManyToOne,
    /// Parent and child tasks are fully co-related (e.g. a hash shuffle).
    ManyToMany,
}

impl DepType {
    /// Whether an eviction of a child task triggers recomputation of
    /// multiple parent tasks (the paper's placement criterion).
    pub fn is_wide(self) -> bool {
        matches!(self, DepType::ManyToOne | DepType::ManyToMany)
    }
}

impl fmt::Display for DepType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepType::OneToOne => "one-to-one",
            DepType::OneToMany => "one-to-many",
            DepType::ManyToOne => "many-to-one",
            DepType::ManyToMany => "many-to-many",
        };
        f.write_str(s)
    }
}

/// How a source operator obtains its data (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Reads large input data from external storage; placed on transient
    /// containers so many containers can load it in parallel.
    Read,
    /// Creates relatively lightweight data in memory; placed on reserved
    /// containers so it is never lost.
    Created,
}

/// The computational kind of an operator.
#[derive(Debug, Clone)]
pub enum OperatorKind {
    /// A data source.
    Source {
        /// Read vs. created (drives placement).
        kind: SourceKind,
        /// Produces the records of each partition.
        f: SourceFn,
    },
    /// A parallel-do transformation.
    ParDo(ParDoFn),
    /// A commutative/associative combine; `keyed` combiners merge per key
    /// over `Pair` records, un-keyed combiners merge globally.
    Combine {
        /// The combiner.
        f: CombineFn,
        /// Whether merging is per key.
        keyed: bool,
    },
    /// Groups `Pair` records by key into `Pair(key, List(values))`.
    GroupByKey,
    /// A terminal operator collecting its input as the job output.
    Sink,
}

impl OperatorKind {
    /// Whether this is a source operator.
    pub fn is_source(&self) -> bool {
        matches!(self, OperatorKind::Source { .. })
    }

    /// Whether this is a sink operator.
    pub fn is_sink(&self) -> bool {
        matches!(self, OperatorKind::Sink)
    }

    /// Whether this operator's outputs may be partially aggregated
    /// (commutative + associative combine, §3.2.7).
    pub fn is_combine(&self) -> bool {
        matches!(self, OperatorKind::Combine { .. })
    }

    /// Short human-readable kind label.
    pub fn label(&self) -> &'static str {
        match self {
            OperatorKind::Source {
                kind: SourceKind::Read,
                ..
            } => "source/read",
            OperatorKind::Source {
                kind: SourceKind::Created,
                ..
            } => "source/created",
            OperatorKind::ParDo(_) => "pardo",
            OperatorKind::Combine { keyed: true, .. } => "combine-per-key",
            OperatorKind::Combine { keyed: false, .. } => "combine-global",
            OperatorKind::GroupByKey => "group-by-key",
            OperatorKind::Sink => "sink",
        }
    }
}

/// A vertex of the logical DAG.
#[derive(Debug, Clone)]
pub struct Operator {
    /// Display name, e.g. `"Aggregate Gradients"`.
    pub name: String,
    /// What the operator computes.
    pub kind: OperatorKind,
    /// Requested task parallelism; resolved by the compiler when `None`.
    pub parallelism: Option<usize>,
    /// Whether tasks of this operator should cache their input in executor
    /// memory (task input caching, §3.2.7).
    pub cache_input: bool,
}

impl Operator {
    /// Builds an operator with default (compiler-resolved) parallelism.
    pub fn new(name: impl Into<String>, kind: OperatorKind) -> Self {
        Operator {
            name: name.into(),
            kind,
            parallelism: None,
            cache_input: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn wide_deps_are_many_x() {
        assert!(DepType::ManyToMany.is_wide());
        assert!(DepType::ManyToOne.is_wide());
        assert!(!DepType::OneToOne.is_wide());
        assert!(!DepType::OneToMany.is_wide());
    }

    #[test]
    fn dep_display_names() {
        assert_eq!(DepType::OneToOne.to_string(), "one-to-one");
        assert_eq!(DepType::ManyToMany.to_string(), "many-to-many");
    }

    #[test]
    fn kind_predicates() {
        let src = OperatorKind::Source {
            kind: SourceKind::Read,
            f: SourceFn::from_vec(vec![Value::Unit]),
        };
        assert!(src.is_source());
        assert!(!src.is_sink());
        assert!(OperatorKind::Sink.is_sink());
        let combine = OperatorKind::Combine {
            f: crate::udf::CombineFn::sum_i64(),
            keyed: true,
        };
        assert!(combine.is_combine());
        assert_eq!(combine.label(), "combine-per-key");
        assert_eq!(src.label(), "source/read");
    }
}
