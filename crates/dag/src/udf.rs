//! User-defined functions attached to operators.
//!
//! Pado executes operators as parallel tasks; a task processes whole input
//! partitions at a time. User code is therefore expressed as *per-partition*
//! functions over [`Value`] records, with a convenience constructor for the
//! common element-wise case.

use std::fmt;
use std::sync::Arc;

use crate::block::MainSlot;
use crate::value::Value;

/// The output callback handed to user functions; each call emits one record.
pub type Emit<'a> = &'a mut dyn FnMut(Value);

/// The input of a single task invocation.
///
/// `mains` holds one [`MainSlot`] per *main* (one-to-one or many-to-x)
/// input edge, in edge-declaration order; each slot references the shared
/// blocks produced upstream without copying any record. `side` holds the
/// fully materialized broadcast (one-to-many) input, if the operator has
/// one.
#[derive(Debug, Clone, Copy)]
pub struct TaskInput<'a> {
    /// One slot of shared record blocks per main input edge.
    pub mains: &'a [MainSlot],
    /// The broadcast side input, if any.
    pub side: Option<&'a [Value]>,
}

impl<'a> TaskInput<'a> {
    /// Builds a task input over the given main slots.
    pub fn new(mains: &'a [MainSlot], side: Option<&'a [Value]>) -> Self {
        TaskInput { mains, side }
    }

    /// Returns the records of the first (and usually only) main input as
    /// one contiguous slice.
    ///
    /// Returns an empty slice when the operator has no main inputs. Slots
    /// fed by one-to-one edges and interior fused members are always one
    /// block, so this never copies; see [`MainSlot::contiguous`] for the
    /// multi-block behavior.
    pub fn main(&self) -> &'a [Value] {
        self.mains.first().map(|s| s.contiguous()).unwrap_or(&[])
    }

    /// Iterates over every record of every main input, in slot order.
    pub fn records(&self) -> impl Iterator<Item = &'a Value> {
        self.mains.iter().flat_map(|s| s.iter())
    }

    /// Total number of records across all main inputs.
    pub fn len(&self) -> usize {
        self.mains.iter().map(MainSlot::len).sum()
    }

    /// Whether all main inputs are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An error raised by user code inside a task.
///
/// User functions can report failures without panicking by using the
/// `try_*` [`ParDoFn`] constructors; the runtime treats an error exactly
/// like a caught panic — the attempt fails, the executor survives, and the
/// master decides whether to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfError(String);

impl UdfError {
    /// Builds an error carrying a human-readable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        UdfError(reason.into())
    }

    /// The reason this UDF failed.
    pub fn reason(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for UdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user function failed: {}", self.0)
    }
}

impl std::error::Error for UdfError {}

type ParDoBody = dyn Fn(TaskInput<'_>, Emit<'_>) -> Result<(), UdfError> + Send + Sync;

/// A parallel-do (flat-map style) function, executed once per task over its
/// whole input partition.
///
/// Internally every `ParDoFn` is fallible; the plain constructors wrap
/// infallible closures, while the `try_*` constructors let user code
/// surface a [`UdfError`] that the runtime converts into a failed attempt
/// instead of a crashed executor thread.
#[derive(Clone)]
pub struct ParDoFn(Arc<ParDoBody>);

impl ParDoFn {
    /// Wraps a per-partition function.
    ///
    /// # Examples
    ///
    /// ```
    /// use pado_dag::{MainSlot, ParDoFn, TaskInput, Value};
    ///
    /// let count = ParDoFn::new(|input: TaskInput<'_>, emit| {
    ///     emit(Value::from(input.main().len() as i64));
    /// });
    /// let part = [MainSlot::from_vec(vec![Value::Unit, Value::Unit])];
    /// let mut out = Vec::new();
    /// count.call(TaskInput::new(&part, None), &mut |v| out.push(v));
    /// assert_eq!(out, vec![Value::from(2i64)]);
    /// ```
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(TaskInput<'_>, Emit<'_>) + Send + Sync + 'static,
    {
        ParDoFn::try_new(move |input, emit| {
            f(input, emit);
            Ok(())
        })
    }

    /// Wraps a fallible per-partition function.
    ///
    /// # Examples
    ///
    /// ```
    /// use pado_dag::{MainSlot, ParDoFn, TaskInput, UdfError, Value};
    ///
    /// let strict = ParDoFn::try_new(|input: TaskInput<'_>, emit| {
    ///     for v in input.main() {
    ///         let n = v.as_i64().ok_or_else(|| UdfError::new("expected an integer"))?;
    ///         emit(Value::from(n * 2));
    ///     }
    ///     Ok(())
    /// });
    /// let part = [MainSlot::from_vec(vec![Value::from("not a number")])];
    /// let err = strict
    ///     .try_call(TaskInput::new(&part, None), &mut |_| {})
    ///     .unwrap_err();
    /// assert!(err.to_string().contains("expected an integer"));
    /// ```
    pub fn try_new<F>(f: F) -> Self
    where
        F: Fn(TaskInput<'_>, Emit<'_>) -> Result<(), UdfError> + Send + Sync + 'static,
    {
        ParDoFn(Arc::new(f))
    }

    /// Wraps an element-wise function applied to every record of every main
    /// input.
    pub fn per_element<F>(f: F) -> Self
    where
        F: Fn(&Value, Emit<'_>) + Send + Sync + 'static,
    {
        ParDoFn::new(move |input, emit| {
            for part in input.mains {
                for v in part {
                    f(v, emit);
                }
            }
        })
    }

    /// Wraps a fallible element-wise function; the first error aborts the
    /// task attempt.
    pub fn try_per_element<F>(f: F) -> Self
    where
        F: Fn(&Value, Emit<'_>) -> Result<(), UdfError> + Send + Sync + 'static,
    {
        ParDoFn::try_new(move |input, emit| {
            for part in input.mains {
                for v in part {
                    f(v, emit)?;
                }
            }
            Ok(())
        })
    }

    /// Wraps an element-wise function that also sees the side input.
    pub fn per_element_with_side<F>(f: F) -> Self
    where
        F: Fn(&Value, &[Value], Emit<'_>) + Send + Sync + 'static,
    {
        ParDoFn::new(move |input, emit| {
            let side = input.side.unwrap_or(&[]);
            for part in input.mains {
                for v in part {
                    f(v, side, emit);
                }
            }
        })
    }

    /// Invokes the function on one task input.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped function returns an error; engine code should
    /// use [`ParDoFn::try_call`] instead.
    pub fn call(&self, input: TaskInput<'_>, emit: Emit<'_>) {
        if let Err(e) = (self.0)(input, emit) {
            panic!("{e}");
        }
    }

    /// Invokes the function on one task input, surfacing UDF errors.
    ///
    /// # Errors
    ///
    /// Returns the [`UdfError`] raised by the wrapped function, if any.
    pub fn try_call(&self, input: TaskInput<'_>, emit: Emit<'_>) -> Result<(), UdfError> {
        (self.0)(input, emit)
    }
}

impl fmt::Debug for ParDoFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ParDoFn")
    }
}

/// A commutative and associative combiner.
///
/// Because `merge` is commutative and associative, the runtime may partially
/// aggregate task outputs on transient executors and merge pushed partial
/// results on reserved executors in any order (§3.2.7 of the paper).
#[derive(Clone)]
pub struct CombineFn {
    identity: Arc<dyn Fn() -> Value + Send + Sync>,
    merge: Arc<dyn Fn(Value, Value) -> Value + Send + Sync>,
}

impl CombineFn {
    /// Builds a combiner from an identity constructor and a merge function.
    ///
    /// The caller must ensure `merge` is commutative and associative with
    /// `identity()` as its neutral element; the engine's correctness under
    /// partial aggregation depends on it.
    pub fn new<I, M>(identity: I, merge: M) -> Self
    where
        I: Fn() -> Value + Send + Sync + 'static,
        M: Fn(Value, Value) -> Value + Send + Sync + 'static,
    {
        CombineFn {
            identity: Arc::new(identity),
            merge: Arc::new(merge),
        }
    }

    /// A combiner summing `I64` records.
    pub fn sum_i64() -> Self {
        CombineFn::new(
            || Value::I64(0),
            |a, b| Value::I64(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0)),
        )
    }

    /// A combiner summing `F64` records.
    pub fn sum_f64() -> Self {
        CombineFn::new(
            || Value::F64(0.0),
            |a, b| Value::F64(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0)),
        )
    }

    /// A combiner summing dense `Vector` records element-wise.
    ///
    /// Mismatched lengths extend to the longer vector, so the identity (an
    /// empty vector) is neutral.
    pub fn sum_vector() -> Self {
        CombineFn::new(
            || Value::vector(Vec::new()),
            |a, b| {
                let av = a.as_vector().unwrap_or(&[]);
                let bv = b.as_vector().unwrap_or(&[]);
                let n = av.len().max(bv.len());
                let mut out = vec![0.0; n];
                for (i, x) in av.iter().enumerate() {
                    out[i] += x;
                }
                for (i, x) in bv.iter().enumerate() {
                    out[i] += x;
                }
                Value::vector(out)
            },
        )
    }

    /// A combiner counting records (each record contributes 1).
    pub fn count() -> Self {
        CombineFn::new(
            || Value::I64(0),
            |a, b| {
                let to_count = |v: &Value| v.as_i64().unwrap_or(1);
                // Accumulators are counts; fresh records count as 1. An
                // I64 operand is treated as an accumulator, which makes
                // the merge associative over mixed partials.
                Value::I64(to_count(&a) + to_count(&b))
            },
        )
    }

    /// A combiner keeping the maximum `I64`.
    pub fn max_i64() -> Self {
        CombineFn::new(
            || Value::I64(i64::MIN),
            |a, b| {
                Value::I64(
                    a.as_i64()
                        .unwrap_or(i64::MIN)
                        .max(b.as_i64().unwrap_or(i64::MIN)),
                )
            },
        )
    }

    /// A combiner keeping the minimum `I64`.
    pub fn min_i64() -> Self {
        CombineFn::new(
            || Value::I64(i64::MAX),
            |a, b| {
                Value::I64(
                    a.as_i64()
                        .unwrap_or(i64::MAX)
                        .min(b.as_i64().unwrap_or(i64::MAX)),
                )
            },
        )
    }

    /// Returns the neutral element.
    pub fn identity(&self) -> Value {
        (self.identity)()
    }

    /// Merges two accumulated values.
    pub fn merge(&self, a: Value, b: Value) -> Value {
        (self.merge)(a, b)
    }

    /// Folds an iterator of values into a single accumulated value.
    pub fn merge_all<I: IntoIterator<Item = Value>>(&self, values: I) -> Value {
        values
            .into_iter()
            .fold(self.identity(), |acc, v| self.merge(acc, v))
    }
}

impl fmt::Debug for CombineFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CombineFn")
    }
}

/// A source function: given `(partition, total_partitions)`, produces the
/// records of that partition.
///
/// `Read` sources use it to model loading from external storage; `Created`
/// sources use it with a single partition to materialize in-memory data
/// (§3.1.1).
#[derive(Clone)]
pub struct SourceFn(Arc<dyn Fn(usize, usize) -> Vec<Value> + Send + Sync>);

impl SourceFn {
    /// Wraps a partitioned generator function.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(usize, usize) -> Vec<Value> + Send + Sync + 'static,
    {
        SourceFn(Arc::new(f))
    }

    /// A source that deals a fixed dataset round-robin across partitions.
    pub fn from_vec(data: Vec<Value>) -> Self {
        let data = Arc::new(data);
        SourceFn::new(move |part, total| {
            data.iter()
                .enumerate()
                .filter(|(i, _)| i % total.max(1) == part)
                .map(|(_, v)| v.clone())
                .collect()
        })
    }

    /// Produces the records of one partition.
    pub fn produce(&self, partition: usize, total: usize) -> Vec<Value> {
        (self.0)(partition, total)
    }
}

impl fmt::Debug for SourceFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SourceFn")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_element_visits_all_mains() {
        let f = ParDoFn::per_element(|v, emit| emit(v.clone()));
        let mains = vec![
            MainSlot::from_vec(vec![Value::from(1i64)]),
            MainSlot::from_vec(vec![Value::from(2i64)]),
        ];
        let mut out = Vec::new();
        f.call(TaskInput::new(&mains, None), &mut |v| out.push(v));
        assert_eq!(out, vec![Value::from(1i64), Value::from(2i64)]);
    }

    #[test]
    fn per_element_with_side_sees_broadcast() {
        let f = ParDoFn::per_element_with_side(|v, side, emit| {
            let inc = side[0].as_i64().unwrap();
            emit(Value::from(v.as_i64().unwrap() + inc));
        });
        let mains = vec![MainSlot::from_vec(vec![Value::from(1i64)])];
        let side = vec![Value::from(10i64)];
        let mut out = Vec::new();
        f.call(TaskInput::new(&mains, Some(&side)), &mut |v| out.push(v));
        assert_eq!(out, vec![Value::from(11i64)]);
    }

    #[test]
    fn task_input_len_and_main() {
        let mains = vec![
            MainSlot::from_vec(vec![Value::Unit; 2]),
            MainSlot::from_vec(vec![Value::Unit; 3]),
        ];
        let ti = TaskInput::new(&mains, None);
        assert_eq!(ti.len(), 5);
        assert!(!ti.is_empty());
        assert_eq!(ti.main().len(), 2);
        assert_eq!(ti.records().count(), 5);
        let empty: Vec<MainSlot> = Vec::new();
        assert!(TaskInput::new(&empty, None).is_empty());
        assert_eq!(TaskInput::new(&empty, None).main().len(), 0);
    }

    #[test]
    fn combine_sum_i64_identity_and_merge() {
        let c = CombineFn::sum_i64();
        assert_eq!(c.identity(), Value::I64(0));
        let merged = c.merge_all(vec![
            Value::from(1i64),
            Value::from(2i64),
            Value::from(3i64),
        ]);
        assert_eq!(merged, Value::I64(6));
    }

    #[test]
    fn combine_sum_vector_handles_ragged_lengths() {
        let c = CombineFn::sum_vector();
        let merged = c.merge(Value::vector(vec![1.0, 2.0]), Value::vector(vec![10.0]));
        assert_eq!(merged.as_vector().unwrap(), &[11.0, 2.0]);
        // Identity is neutral on either side.
        let v = Value::vector(vec![5.0]);
        assert_eq!(c.merge(c.identity(), v.clone()), v);
        assert_eq!(c.merge(v.clone(), c.identity()), v);
    }

    #[test]
    fn combine_max_min() {
        let max = CombineFn::max_i64();
        let min = CombineFn::min_i64();
        let vals = vec![Value::from(3i64), Value::from(-7i64), Value::from(5i64)];
        assert_eq!(max.merge_all(vals.clone()), Value::from(5i64));
        assert_eq!(min.merge_all(vals), Value::from(-7i64));
        assert_eq!(
            max.merge(max.identity(), Value::from(1i64)),
            Value::from(1i64)
        );
    }

    #[test]
    fn combine_count_is_associative_over_partials() {
        let c = CombineFn::count();
        // Counting integer accumulators directly.
        let direct = c.merge_all(vec![Value::I64(1), Value::I64(1), Value::I64(1)]);
        assert_eq!(direct, Value::I64(3));
        // Merging two partial counts equals counting everything.
        let left = c.merge_all(vec![Value::I64(1), Value::I64(1)]);
        let merged = c.merge(left, Value::I64(1));
        assert_eq!(merged, Value::I64(3));
    }

    #[test]
    fn source_from_vec_partitions_cover_all_records() {
        let data: Vec<Value> = (0..10).map(Value::from).collect();
        let s = SourceFn::from_vec(data.clone());
        let mut all = Vec::new();
        for p in 0..3 {
            all.extend(s.produce(p, 3));
        }
        all.sort();
        assert_eq!(all, data);
    }

    #[test]
    fn source_single_partition_yields_everything() {
        let data: Vec<Value> = (0..4).map(Value::from).collect();
        let s = SourceFn::from_vec(data.clone());
        assert_eq!(s.produce(0, 1), data);
    }
}
