//! Logical dataflow model for the Pado engine.
//!
//! This crate is the substrate the Pado compiler and runtime build on: a
//! dynamically-typed record model ([`Value`]), operators with typed data
//! dependencies ([`Operator`], [`DepType`]), the logical DAG itself
//! ([`LogicalDag`]), and a Beam-like typed builder ([`Pipeline`],
//! [`PCollection`]) mirroring the programming model the paper's Java
//! implementation consumes (§4).
//!
//! # Examples
//!
//! Building the paper's running Map-Reduce example (Figure 2a):
//!
//! ```
//! use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};
//!
//! let p = Pipeline::new();
//! p.read("Read", 8, SourceFn::from_vec(vec![Value::from("the cat")]))
//!     .par_do(
//!         "Map",
//!         ParDoFn::per_element(|line, emit| {
//!             for w in line.as_str().unwrap_or("").split_whitespace() {
//!                 emit(Value::pair(Value::from(w), Value::from(1i64)));
//!             }
//!         }),
//!     )
//!     .combine_per_key("Reduce", CombineFn::sum_i64())
//!     .sink("Write");
//! let dag = p.build().unwrap();
//! assert!(dag.validate().is_ok());
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod colcodec;
pub mod column;
pub mod lz;

mod block;
mod builder;
mod error;
mod graph;
mod operator;
mod udf;
pub mod value;

pub use block::{block_from_columns, block_from_vec, empty_block, Block, BlockInner, MainSlot};
pub use builder::{PCollection, Pipeline};
pub use column::{Columns, ScalarCol};
pub use error::{DagError, Result};
pub use graph::{Edge, LogicalDag, OpId};
pub use operator::{DepType, Operator, OperatorKind, SourceKind};
pub use udf::{CombineFn, Emit, ParDoFn, SourceFn, TaskInput, UdfError};
pub use value::Value;
