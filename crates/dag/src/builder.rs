//! A Beam-like typed pipeline builder that produces a [`LogicalDag`].
//!
//! The builder plays the role Apache Beam plays for the Java Pado
//! implementation (§4): users chain transforms on [`PCollection`] handles,
//! and each transform records an operator plus typed edges in the
//! underlying logical DAG. Dependency types are derived from the transform:
//! `par_do` adds one-to-one edges, side inputs add one-to-many (broadcast)
//! edges, `aggregate` adds a many-to-one edge, and `group_by_key` /
//! `combine_per_key` add many-to-many (shuffle) edges.
//!
//! # Examples
//!
//! ```
//! use pado_dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};
//!
//! let p = Pipeline::new();
//! let words = p.read(
//!     "Read",
//!     4,
//!     SourceFn::from_vec(vec![Value::from("a"), Value::from("b"), Value::from("a")]),
//! );
//! let pairs = words.par_do(
//!     "Map",
//!     ParDoFn::per_element(|w, emit| emit(Value::pair(w.clone(), Value::from(1i64)))),
//! );
//! let counts = pairs.combine_per_key("Reduce", CombineFn::sum_i64());
//! counts.sink("Write");
//! let dag = p.build().unwrap();
//! assert_eq!(dag.len(), 4);
//! ```

use std::cell::RefCell;

use crate::error::Result;
use crate::graph::{LogicalDag, OpId};
use crate::operator::{DepType, Operator, OperatorKind, SourceKind};
use crate::udf::{CombineFn, ParDoFn, SourceFn};
use crate::value::Value;

/// A dataflow program under construction.
#[derive(Debug, Default)]
pub struct Pipeline {
    dag: RefCell<LogicalDag>,
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    fn add_op(&self, op: Operator) -> OpId {
        self.dag.borrow_mut().add_operator(op)
    }

    fn add_edge(&self, src: OpId, dst: OpId, dep: DepType) {
        // Edges created through the builder always reference live operators
        // and are never duplicated, so this cannot fail.
        self.dag
            .borrow_mut()
            .add_edge(src, dst, dep)
            .expect("builder-produced edge is structurally valid");
    }

    /// Adds a `Read` source: `partitions` tasks each produce one partition
    /// of external input data. Placed on transient containers by the
    /// compiler (§3.1.1).
    pub fn read(&self, name: impl Into<String>, partitions: usize, f: SourceFn) -> PCollection<'_> {
        let mut op = Operator::new(
            name,
            OperatorKind::Source {
                kind: SourceKind::Read,
                f,
            },
        );
        op.parallelism = Some(partitions.max(1));
        let id = self.add_op(op);
        PCollection { pipeline: self, id }
    }

    /// Adds a `Created` source materializing `data` in memory on a single
    /// task. Placed on reserved containers by the compiler (§3.1.1).
    pub fn create(&self, name: impl Into<String>, data: Vec<Value>) -> PCollection<'_> {
        let mut op = Operator::new(
            name,
            OperatorKind::Source {
                kind: SourceKind::Created,
                f: SourceFn::from_vec(data),
            },
        );
        op.parallelism = Some(1);
        let id = self.add_op(op);
        PCollection { pipeline: self, id }
    }

    /// Finishes construction, validating the DAG.
    ///
    /// # Errors
    ///
    /// Propagates any structural error found by [`LogicalDag::validate`].
    pub fn build(self) -> Result<LogicalDag> {
        let dag = self.dag.into_inner();
        dag.validate()?;
        Ok(dag)
    }
}

/// A handle to the output of one operator in a [`Pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PCollection<'p> {
    pipeline: &'p Pipeline,
    id: OpId,
}

impl<'p> PCollection<'p> {
    /// The id of the operator producing this collection.
    pub fn op_id(&self) -> OpId {
        self.id
    }

    /// Applies a parallel-do with a one-to-one dependency.
    pub fn par_do(&self, name: impl Into<String>, f: ParDoFn) -> PCollection<'p> {
        let id = self
            .pipeline
            .add_op(Operator::new(name, OperatorKind::ParDo(f)));
        self.pipeline.add_edge(self.id, id, DepType::OneToOne);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Applies a parallel-do whose tasks also receive `side` broadcast as a
    /// one-to-many dependency (e.g. the latest ML model).
    pub fn par_do_with_side(
        &self,
        name: impl Into<String>,
        side: &PCollection<'p>,
        f: ParDoFn,
    ) -> PCollection<'p> {
        let id = self
            .pipeline
            .add_op(Operator::new(name, OperatorKind::ParDo(f)));
        self.pipeline.add_edge(self.id, id, DepType::OneToOne);
        self.pipeline.add_edge(side.id, id, DepType::OneToMany);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Applies a parallel-do reading two main inputs, both one-to-one;
    /// task `i` sees partition `i` of `self` and of `other`.
    pub fn par_do_zip(
        &self,
        name: impl Into<String>,
        other: &PCollection<'p>,
        f: ParDoFn,
    ) -> PCollection<'p> {
        let id = self
            .pipeline
            .add_op(Operator::new(name, OperatorKind::ParDo(f)));
        self.pipeline.add_edge(self.id, id, DepType::OneToOne);
        self.pipeline.add_edge(other.id, id, DepType::OneToOne);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Groups `Pair` records by key (a many-to-many shuffle).
    pub fn group_by_key(&self, name: impl Into<String>) -> PCollection<'p> {
        let id = self
            .pipeline
            .add_op(Operator::new(name, OperatorKind::GroupByKey));
        self.pipeline.add_edge(self.id, id, DepType::ManyToMany);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Combines `Pair` records per key (a many-to-many shuffle with a
    /// commutative/associative combiner, eligible for partial aggregation).
    pub fn combine_per_key(&self, name: impl Into<String>, f: CombineFn) -> PCollection<'p> {
        let id = self.pipeline.add_op(Operator::new(
            name,
            OperatorKind::Combine { f, keyed: true },
        ));
        self.pipeline.add_edge(self.id, id, DepType::ManyToMany);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Globally aggregates all records into one (a many-to-one collection
    /// with a commutative/associative combiner).
    pub fn aggregate(&self, name: impl Into<String>, f: CombineFn) -> PCollection<'p> {
        self.aggregate_with(name, f, 1)
    }

    /// Aggregates through `parallelism` intermediate tasks (one level of a
    /// tree aggregation, as MLlib's `treeAggregate` does): a many-to-one
    /// dependency where producer task `i` feeds consumer `i mod
    /// parallelism`.
    pub fn aggregate_with(
        &self,
        name: impl Into<String>,
        f: CombineFn,
        parallelism: usize,
    ) -> PCollection<'p> {
        let mut op = Operator::new(name, OperatorKind::Combine { f, keyed: false });
        op.parallelism = Some(parallelism.max(1));
        let id = self.pipeline.add_op(op);
        self.pipeline.add_edge(self.id, id, DepType::ManyToOne);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Unions this collection with another (Beam's `Flatten`): task `i`
    /// of the result concatenates partition `i` of both inputs.
    pub fn union(&self, name: impl Into<String>, other: &PCollection<'p>) -> PCollection<'p> {
        self.par_do_zip(
            name,
            other,
            ParDoFn::new(|input, emit| {
                for part in input.mains {
                    for v in part {
                        emit(v.clone());
                    }
                }
            }),
        )
    }

    /// Terminates this collection into a job output sink.
    pub fn sink(&self, name: impl Into<String>) -> PCollection<'p> {
        let id = self
            .pipeline
            .add_op(Operator::new(name, OperatorKind::Sink));
        self.pipeline.add_edge(self.id, id, DepType::OneToOne);
        PCollection {
            pipeline: self.pipeline,
            id,
        }
    }

    /// Sets the task parallelism of the producing operator.
    pub fn with_parallelism(self, n: usize) -> Self {
        self.pipeline.dag.borrow_mut().op_mut(self.id).parallelism = Some(n.max(1));
        self
    }

    /// Marks the producing operator's consumers to cache this input in
    /// executor memory (task input caching, §3.2.7).
    pub fn cached(self) -> Self {
        self.pipeline.dag.borrow_mut().op_mut(self.id).cache_input = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident() -> ParDoFn {
        ParDoFn::per_element(|v, e| e(v.clone()))
    }

    #[test]
    fn map_reduce_shape() {
        let p = Pipeline::new();
        let read = p.read("Read", 3, SourceFn::from_vec(vec![Value::Unit]));
        let mapped = read.par_do("Map", ident());
        let reduced = mapped.combine_per_key("Reduce", CombineFn::sum_i64());
        reduced.sink("Sink");
        let dag = p.build().unwrap();
        assert_eq!(dag.len(), 4);
        let edges = dag.edges();
        assert_eq!(edges[0].dep, DepType::OneToOne);
        assert_eq!(edges[1].dep, DepType::ManyToMany);
        assert_eq!(edges[2].dep, DepType::OneToOne);
    }

    #[test]
    fn side_input_adds_broadcast_edge() {
        let p = Pipeline::new();
        let data = p.read("Read", 2, SourceFn::from_vec(vec![Value::Unit]));
        let model = p.create("Model", vec![Value::from(0.0)]);
        let grad_id = data.par_do_with_side("Grad", &model, ident()).op_id();
        let dag = p.build().unwrap();
        let in_edges = dag.in_edges(grad_id);
        assert_eq!(in_edges.len(), 2);
        assert_eq!(in_edges[0].dep, DepType::OneToOne);
        assert_eq!(in_edges[1].dep, DepType::OneToMany);
    }

    #[test]
    fn aggregate_is_many_to_one_parallelism_one() {
        let p = Pipeline::new();
        let data = p.read("Read", 8, SourceFn::from_vec(vec![Value::Unit]));
        let agg = data.aggregate("Agg", CombineFn::sum_f64());
        let id = agg.op_id();
        let dag = p.build().unwrap();
        assert_eq!(dag.in_edges(id)[0].dep, DepType::ManyToOne);
        assert_eq!(dag.op(id).parallelism, Some(1));
    }

    #[test]
    fn zip_has_two_one_to_one_inputs() {
        let p = Pipeline::new();
        let a = p.create("A", vec![Value::from(1i64)]);
        let b = p.create("B", vec![Value::from(2i64)]);
        let z = a.par_do_zip("Zip", &b, ident());
        let id = z.op_id();
        let dag = p.build().unwrap();
        let ins = dag.in_edges(id);
        assert_eq!(ins.len(), 2);
        assert!(ins.iter().all(|e| e.dep == DepType::OneToOne));
    }

    #[test]
    fn with_parallelism_and_cached_set_flags() {
        let p = Pipeline::new();
        let c = p
            .read("Read", 2, SourceFn::from_vec(vec![Value::Unit]))
            .with_parallelism(7)
            .cached();
        let id = c.op_id();
        let dag = p.build().unwrap();
        assert_eq!(dag.op(id).parallelism, Some(7));
        assert!(dag.op(id).cache_input);
    }

    #[test]
    fn group_by_key_is_many_to_many() {
        let p = Pipeline::new();
        let g = p
            .read("Read", 2, SourceFn::from_vec(vec![Value::Unit]))
            .group_by_key("Group");
        let id = g.op_id();
        let dag = p.build().unwrap();
        assert_eq!(dag.in_edges(id)[0].dep, DepType::ManyToMany);
    }

    #[test]
    fn union_concatenates_partitions() {
        let p = Pipeline::new();
        let a = p.create("A", vec![Value::from(1i64)]);
        let b = p.create("B", vec![Value::from(2i64)]);
        let u = a.union("U", &b);
        let id = u.op_id();
        let dag = p.build().unwrap();
        assert_eq!(dag.in_edges(id).len(), 2);
        assert!(dag.in_edges(id).iter().all(|e| e.dep == DepType::OneToOne));
    }

    #[test]
    fn read_parallelism_is_at_least_one() {
        let p = Pipeline::new();
        let r = p.read("Read", 0, SourceFn::from_vec(vec![Value::Unit]));
        let id = r.op_id();
        let dag = p.build().unwrap();
        assert_eq!(dag.op(id).parallelism, Some(1));
    }
}
