//! Immutable shared data blocks — the unit of intermediate data.
//!
//! A [`Block`] is created exactly once, when a task finishes (or when a
//! routing pass buckets a finished output), and is only *referenced* from
//! then on: the master's location table, progress snapshots, executor
//! caches, and consumer task inputs all hold `Arc` clones of the same
//! allocation. Records are never copied to move a block around, which
//! makes pushing a completed output to its consumers, snapshotting the
//! master's progress, and recovering from a master restart all O(refs)
//! instead of O(records).
//!
//! Sharing invariants:
//! - a block's records are immutable after creation (there is no `&mut`
//!   path to a block's contents anywhere in the engine);
//! - any component may hold a block indefinitely; dropping the last
//!   reference frees it;
//! - code that needs to *change* records builds a new block.

use std::sync::{Arc, OnceLock};

use crate::value::Value;

/// An immutable, reference-counted run of records.
pub type Block = Arc<[Value]>;

/// Builds a block from owned records (moves them; no per-record clone).
pub fn block_from_vec(records: Vec<Value>) -> Block {
    records.into()
}

/// The shared empty block (one static allocation, cloned by reference).
pub fn empty_block() -> Block {
    static EMPTY: OnceLock<Block> = OnceLock::new();
    EMPTY.get_or_init(|| Vec::new().into()).clone()
}

/// One *main* input slot of a task: the blocks it reads, in producer-index
/// order.
///
/// A slot fed by a one-to-one edge or by an interior fused chain member
/// always holds a single block; slots fed by gather (many-to-one) or
/// shuffle (many-to-many) edges hold one block per producer task. Holding
/// blocks — not concatenated vectors — is what lets a consumer read its
/// inputs without taking ownership of a single record.
#[derive(Debug, Clone, Default)]
pub struct MainSlot {
    parts: Vec<Block>,
}

impl MainSlot {
    /// Builds a single-block slot from owned records (no per-record clone).
    pub fn from_vec(records: Vec<Value>) -> Self {
        MainSlot {
            parts: vec![records.into()],
        }
    }

    /// Builds a single-block slot sharing an existing block.
    pub fn from_block(block: Block) -> Self {
        MainSlot { parts: vec![block] }
    }

    /// Builds a slot over several shared blocks; empty blocks are dropped.
    pub fn from_blocks(parts: Vec<Block>) -> Self {
        MainSlot {
            parts: parts.into_iter().filter(|b| !b.is_empty()).collect(),
        }
    }

    /// The underlying blocks, in producer-index order.
    pub fn parts(&self) -> &[Block] {
        &self.parts
    }

    /// Total number of records across all blocks.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|b| b.len()).sum()
    }

    /// Whether the slot holds no records.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|b| b.is_empty())
    }

    /// The first record, if any.
    pub fn first(&self) -> Option<&Value> {
        self.parts.iter().find_map(|b| b.first())
    }

    /// Iterates over all records, in block order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.parts.iter().flat_map(|b| b.iter())
    }

    /// The records as one contiguous slice.
    ///
    /// Slots fed by one-to-one edges and interior fused chain members are
    /// always a single block, so this is the natural zero-copy accessor
    /// for whole-partition user functions. Use [`MainSlot::iter`] for
    /// slots that may gather several producer blocks.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds more than one block; the runtime catches
    /// the panic and fails the task attempt with a readable reason.
    pub fn contiguous(&self) -> &[Value] {
        match self.parts.len() {
            0 => &[],
            1 => &self.parts[0],
            n => {
                panic!("MainSlot::contiguous() on a {n}-block slot; use iter() for gathered inputs")
            }
        }
    }
}

impl<'a> IntoIterator for &'a MainSlot {
    type Item = &'a Value;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Block>,
        std::slice::Iter<'a, Value>,
        fn(&'a Block) -> std::slice::Iter<'a, Value>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.parts.iter().flat_map(|b| b.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(n: i64) -> Vec<Value> {
        (0..n).map(Value::from).collect()
    }

    #[test]
    fn from_blocks_drops_empties_and_flattens() {
        let slot = MainSlot::from_blocks(vec![
            block_from_vec(ints(2)),
            empty_block(),
            block_from_vec(ints(3)),
        ]);
        assert_eq!(slot.parts().len(), 2);
        assert_eq!(slot.len(), 5);
        assert!(!slot.is_empty());
        let collected: Vec<i64> = slot.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(collected, vec![0, 1, 0, 1, 2]);
    }

    #[test]
    fn contiguous_serves_single_block_slots() {
        let slot = MainSlot::from_vec(ints(4));
        assert_eq!(slot.contiguous().len(), 4);
        assert_eq!(slot.first(), Some(&Value::from(0i64)));
        let empty = MainSlot::default();
        assert!(empty.contiguous().is_empty());
        assert!(empty.first().is_none());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn contiguous_panics_on_multi_block_slots() {
        let slot = MainSlot::from_blocks(vec![block_from_vec(ints(1)), block_from_vec(ints(1))]);
        let _ = slot.contiguous();
    }

    #[test]
    fn empty_block_is_shared() {
        let a = empty_block();
        let b = empty_block();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.is_empty());
    }
}
