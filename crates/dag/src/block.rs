//! Immutable shared data blocks — the unit of intermediate data.
//!
//! A [`Block`] is created exactly once, when a task finishes (or when a
//! routing pass buckets a finished output), and is only *referenced* from
//! then on: the master's location table, progress snapshots, executor
//! caches, and consumer task inputs all hold `Arc` clones of the same
//! allocation. Records are never copied to move a block around, which
//! makes pushing a completed output to its consumers, snapshotting the
//! master's progress, and recovering from a master restart all O(refs)
//! instead of O(records).
//!
//! A block is also *typed*: the first time a layout question is asked it
//! analyzes its records ([`crate::column::analyze`]) and, when they are
//! homogeneous scalars or pairs of scalars, holds them as flat column
//! vectors ([`Columns`]). The row and column representations are duals —
//! whichever side a block was built from, the other is derived lazily
//! and cached, and materializing rows out of columns constructs fresh
//! values (never clones, so the clone-count proofs are unaffected).
//!
//! Sharing invariants:
//! - a block's records are immutable after creation (there is no `&mut`
//!   path to a block's contents anywhere in the engine);
//! - any component may hold a block indefinitely; dropping the last
//!   reference frees it;
//! - code that needs to *change* records builds a new block.

use std::sync::{Arc, OnceLock};

use crate::column::{analyze, Columns};
use crate::value::Value;

/// An immutable, reference-counted run of records.
pub type Block = Arc<BlockInner>;

/// Cached byte-accounting for one block (computed at most once).
#[derive(Clone, Copy)]
struct BlockSizes {
    /// Length of [`crate::colcodec::encode_block`]'s output — what a
    /// spill file or serialized push actually occupies.
    encoded: usize,
    /// Length of the legacy row encoding (`4 + Σ size_bytes`) — the
    /// uncompressed baseline the compression ratio is measured against.
    raw: usize,
}

/// The contents of a [`Block`]: a fixed run of records, held as rows, as
/// typed columns, or both. Always constructed through [`block_from_vec`],
/// [`block_from_columns`], or `From<Vec<Value>>`, so at least one of the
/// two representations is seeded and the other can be derived.
/// (`Arc` is not a fundamental type, so a `From<Vec<Value>>` impl for
/// the `Block` alias is not possible — use [`block_from_vec`].)
pub struct BlockInner {
    len: usize,
    rows: OnceLock<Vec<Value>>,
    cols: OnceLock<Option<Columns>>,
    sizes: OnceLock<BlockSizes>,
}

impl BlockInner {
    /// Number of records (free: never materializes either layout).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The records as rows, materializing (fresh values, no clones) from
    /// the columns on first use if the block was built columnar.
    pub fn rows(&self) -> &[Value] {
        self.rows.get_or_init(|| {
            self.cols
                .get()
                .and_then(|c| c.as_ref())
                .expect("block is seeded with rows or columns")
                .rows()
        })
    }

    /// The column layout, analyzing the rows on first use; `None` means
    /// the records are heterogeneous and only the row path applies.
    pub fn columns(&self) -> Option<&Columns> {
        self.cols.get_or_init(|| analyze(self.rows())).as_ref()
    }

    /// Serialized size in bytes: the length of this block's
    /// [`crate::colcodec::encode_block`] output, which is what spill
    /// files and push payloads actually occupy. Memoized; the store's
    /// budget accounting charges this.
    pub fn encoded_len(&self) -> usize {
        self.sizes().encoded
    }

    /// Size of the same records in the row (per-record) encoding:
    /// `4 + Σ Value::size_bytes`. The compression win reported by the
    /// journal is `encoded_len` against this baseline.
    pub fn raw_len(&self) -> usize {
        self.sizes().raw
    }

    fn sizes(&self) -> BlockSizes {
        *self.sizes.get_or_init(|| {
            let raw = 4 + self.raw_body_bytes();
            // A block too large for the codec's u32 lengths cannot be
            // serialized at all; account it at the row size so budget
            // math stays sane and the spill path reports the error.
            let encoded = crate::colcodec::encode_block(self)
                .map(|b| b.len())
                .unwrap_or(raw);
            BlockSizes { encoded, raw }
        })
    }

    fn raw_body_bytes(&self) -> usize {
        if let Some(Some(c)) = self.cols.get() {
            return c.row_encoded_bytes();
        }
        self.rows().iter().map(Value::size_bytes).sum()
    }

    /// Records the serialized length observed while decoding, so a
    /// reloaded block doesn't re-encode just to size itself. Safe
    /// because the codec is deterministic: re-encoding reproduces the
    /// same bytes.
    pub(crate) fn seal_encoded_len(&self, encoded: usize) {
        let raw = 4 + self.raw_body_bytes();
        let _ = self.sizes.set(BlockSizes { encoded, raw });
    }
}

impl std::ops::Deref for BlockInner {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.rows()
    }
}

impl AsRef<[Value]> for BlockInner {
    fn as_ref(&self) -> &[Value] {
        self.rows()
    }
}

impl PartialEq for BlockInner {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.rows() == other.rows()
    }
}

impl Eq for BlockInner {}

impl std::fmt::Debug for BlockInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Block{:?}", self.rows())
    }
}

/// Builds a block from owned records (moves them; no per-record clone).
pub fn block_from_vec(records: Vec<Value>) -> Block {
    let inner = BlockInner {
        len: records.len(),
        rows: OnceLock::from(records),
        cols: OnceLock::new(),
        sizes: OnceLock::new(),
    };
    Arc::new(inner)
}

/// Builds a block directly from a column layout (the vectorized kernels'
/// output path; rows are derived lazily only if someone asks).
pub fn block_from_columns(cols: Columns) -> Block {
    let inner = BlockInner {
        len: cols.len(),
        rows: OnceLock::new(),
        cols: OnceLock::from(Some(cols)),
        sizes: OnceLock::new(),
    };
    Arc::new(inner)
}

/// The shared empty block (one static allocation, cloned by reference).
pub fn empty_block() -> Block {
    static EMPTY: OnceLock<Block> = OnceLock::new();
    EMPTY.get_or_init(|| block_from_vec(Vec::new())).clone()
}

/// One *main* input slot of a task: the blocks it reads, in producer-index
/// order.
///
/// A slot fed by a one-to-one edge or by an interior fused chain member
/// always holds a single block; slots fed by gather (many-to-one) or
/// shuffle (many-to-many) edges hold one block per producer task. Holding
/// blocks — not concatenated vectors — is what lets a consumer read its
/// inputs without taking ownership of a single record.
#[derive(Debug, Clone, Default)]
pub struct MainSlot {
    parts: Vec<Block>,
}

impl MainSlot {
    /// Builds a single-block slot from owned records (no per-record clone).
    pub fn from_vec(records: Vec<Value>) -> Self {
        MainSlot {
            parts: vec![block_from_vec(records)],
        }
    }

    /// Builds a single-block slot sharing an existing block.
    pub fn from_block(block: Block) -> Self {
        MainSlot { parts: vec![block] }
    }

    /// Builds a slot over several shared blocks; empty blocks are dropped.
    pub fn from_blocks(parts: Vec<Block>) -> Self {
        MainSlot {
            parts: parts.into_iter().filter(|b| !b.is_empty()).collect(),
        }
    }

    /// The underlying blocks, in producer-index order.
    pub fn parts(&self) -> &[Block] {
        &self.parts
    }

    /// Total number of records across all blocks.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|b| b.len()).sum()
    }

    /// Whether the slot holds no records.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|b| b.is_empty())
    }

    /// The first record, if any.
    pub fn first(&self) -> Option<&Value> {
        self.parts.iter().find_map(|b| b.rows().first())
    }

    /// Iterates over all records, in block order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.parts.iter().flat_map(|b| b.rows().iter())
    }

    /// The records as one contiguous slice.
    ///
    /// Slots fed by one-to-one edges and interior fused chain members are
    /// always a single block, so this is the natural zero-copy accessor
    /// for whole-partition user functions. Use [`MainSlot::iter`] for
    /// slots that may gather several producer blocks.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds more than one block; the runtime catches
    /// the panic and fails the task attempt with a readable reason.
    pub fn contiguous(&self) -> &[Value] {
        match self.parts.len() {
            0 => &[],
            1 => self.parts[0].rows(),
            n => {
                panic!("MainSlot::contiguous() on a {n}-block slot; use iter() for gathered inputs")
            }
        }
    }
}

impl<'a> IntoIterator for &'a MainSlot {
    type Item = &'a Value;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Block>,
        std::slice::Iter<'a, Value>,
        fn(&'a Block) -> std::slice::Iter<'a, Value>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.parts.iter().flat_map(|b| b.rows().iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(n: i64) -> Vec<Value> {
        (0..n).map(Value::from).collect()
    }

    #[test]
    fn from_blocks_drops_empties_and_flattens() {
        let slot = MainSlot::from_blocks(vec![
            block_from_vec(ints(2)),
            empty_block(),
            block_from_vec(ints(3)),
        ]);
        assert_eq!(slot.parts().len(), 2);
        assert_eq!(slot.len(), 5);
        assert!(!slot.is_empty());
        let collected: Vec<i64> = slot.iter().map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(collected, vec![0, 1, 0, 1, 2]);
    }

    #[test]
    fn contiguous_serves_single_block_slots() {
        let slot = MainSlot::from_vec(ints(4));
        assert_eq!(slot.contiguous().len(), 4);
        assert_eq!(slot.first(), Some(&Value::from(0i64)));
        let empty = MainSlot::default();
        assert!(empty.contiguous().is_empty());
        assert!(empty.first().is_none());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn contiguous_panics_on_multi_block_slots() {
        let slot = MainSlot::from_blocks(vec![block_from_vec(ints(1)), block_from_vec(ints(1))]);
        let _ = slot.contiguous();
    }

    #[test]
    fn empty_block_is_shared() {
        let a = empty_block();
        let b = empty_block();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.is_empty());
    }

    #[test]
    fn rows_and_columns_are_duals() {
        let records: Vec<Value> = (0..20)
            .map(|i| Value::pair(Value::from(i % 3), Value::from(i as f64)))
            .collect();
        // Row-seeded: columns derive by analysis.
        let by_rows = block_from_vec(records.clone());
        let cols = by_rows.columns().expect("homogeneous pairs").clone();
        // Column-seeded: rows derive by materialization, without a
        // single Value clone.
        let by_cols = block_from_columns(cols);
        assert_eq!(by_cols.len(), 20);
        let before = crate::value::clone_count();
        assert_eq!(by_cols.rows(), &records[..]);
        assert_eq!(crate::value::clone_count(), before);
        assert_eq!(by_rows, by_cols);
    }

    #[test]
    fn len_never_materializes_rows() {
        let records: Vec<Value> = (0..10).map(Value::from).collect();
        let cols = analyze(&records).expect("columnar");
        let block = block_from_columns(cols);
        assert_eq!(block.len(), 10);
        assert!(!block.is_empty());
        // The rows cell is still empty: len came from the columns.
        assert!(block.rows.get().is_none());
    }

    #[test]
    fn heterogeneous_blocks_report_no_columns() {
        let block = block_from_vec(vec![Value::Unit, Value::from(1i64)]);
        assert!(block.columns().is_none());
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn encoded_len_is_compressed_and_raw_len_is_row_format() {
        let records: Vec<Value> = (0..1000)
            .map(|i| Value::pair(Value::from(i % 5), Value::from(1i64)))
            .collect();
        let raw: usize = 4 + records.iter().map(Value::size_bytes).sum::<usize>();
        let block = block_from_vec(records);
        assert_eq!(block.raw_len(), raw);
        assert!(
            block.encoded_len() < raw / 4,
            "low-cardinality pairs should compress 4x: {} vs {raw}",
            block.encoded_len()
        );
        assert_eq!(
            block.encoded_len(),
            crate::colcodec::encode_block(&block).unwrap().len()
        );
    }
}
