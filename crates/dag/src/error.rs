//! Error types for logical DAG construction and validation.

use std::fmt;

use crate::graph::OpId;

/// Errors produced while building or validating a [`crate::LogicalDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge referenced an operator id that does not exist in the DAG.
    UnknownOperator(OpId),
    /// An edge connected an operator to itself.
    SelfLoop(OpId),
    /// The DAG contains a cycle; the offending operator is reported.
    Cycle(OpId),
    /// A source operator has incoming edges.
    SourceWithInput(OpId),
    /// A non-source operator has no incoming edges.
    MissingInput(OpId),
    /// A sink operator has outgoing edges.
    SinkWithOutput(OpId),
    /// Two operators are connected by more than one edge.
    DuplicateEdge(OpId, OpId),
    /// The DAG has no operators.
    Empty,
    /// An operator's declared parallelism is zero.
    ZeroParallelism(OpId),
    /// A serialized record could not be decoded.
    Codec(&'static str),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownOperator(id) => write!(f, "unknown operator id {id}"),
            DagError::SelfLoop(id) => write!(f, "self-loop on operator {id}"),
            DagError::Cycle(id) => write!(f, "cycle detected involving operator {id}"),
            DagError::SourceWithInput(id) => {
                write!(f, "source operator {id} must not have incoming edges")
            }
            DagError::MissingInput(id) => {
                write!(f, "non-source operator {id} has no incoming edges")
            }
            DagError::SinkWithOutput(id) => {
                write!(f, "sink operator {id} must not have outgoing edges")
            }
            DagError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge between operators {a} and {b}")
            }
            DagError::Empty => write!(f, "logical DAG has no operators"),
            DagError::ZeroParallelism(id) => {
                write!(f, "operator {id} declares zero parallelism")
            }
            DagError::Codec(why) => write!(f, "codec error: {why}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Convenience alias for fallible DAG operations.
pub type Result<T> = std::result::Result<T, DagError>;
