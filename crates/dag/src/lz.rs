//! A small, dependency-free LZ77 byte compressor in the LZ4 block style.
//!
//! Spill files and transient→reserved push payloads are dominated by
//! repetitive encoded column data, so even a greedy single-probe matcher
//! wins real bytes. The format is a sequence of tokens, each a literal
//! run followed by a back-reference:
//!
//! ```text
//! token := <byte: lit_len(hi nibble) | match_len-4(lo nibble)>
//!          [lit_len extension: 255* final]   (if lit nibble == 15)
//!          <literals>
//!          <offset: u16 LE>                  (absent in the final token)
//!          [match_len extension: 255* final] (if match nibble == 15)
//! ```
//!
//! The final token carries literals only (its match nibble is 0 and no
//! offset follows); the decoder knows it is final because the input ends
//! right after the literals. Compression is fully deterministic — a pure
//! function of the input bytes — which the block codec relies on for
//! byte-identical re-encodes.

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = u16::MAX as usize;
const HASH_BITS: u32 = 13;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn push_run_len(mut n: usize, out: &mut Vec<u8>) {
    while n >= 255 {
        out.push(255);
        n -= 255;
    }
    out.push(n as u8);
}

fn emit(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit = literals.len();
    let match_nibble = match m {
        Some((_, len)) => (len - MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push(((lit.min(15) as u8) << 4) | match_nibble);
    if lit >= 15 {
        push_run_len(lit - 15, out);
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_run_len(len - MIN_MATCH - 15, out);
        }
    }
}

/// Compresses `input`. The output is only useful with [`decompress`] and
/// the original length; it is not self-framing.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n <= MIN_MATCH {
        emit(&mut out, input, None);
        return out;
    }
    // Single-probe hash table of the most recent position for each
    // 4-byte prefix hash (stored +1 so 0 means empty).
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..i + 4]);
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let c = cand - 1;
            if i - c <= MAX_OFFSET && input[c..c + MIN_MATCH] == input[i..i + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while i + len < n && input[c + len] == input[i + len] {
                    len += 1;
                }
                emit(&mut out, &input[anchor..i], Some((i - c, len)));
                i += len;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit(&mut out, &input[anchor..], None);
    out
}

fn read_run_len(input: &[u8], pos: &mut usize) -> Result<usize, &'static str> {
    let mut n = 0usize;
    loop {
        let b = *input.get(*pos).ok_or("lz: truncated run length")?;
        *pos += 1;
        n += b as usize;
        if b != 255 {
            return Ok(n);
        }
    }
}

/// Decompresses a [`compress`] output back to exactly `expected_len`
/// bytes.
///
/// # Errors
///
/// Fails on any malformed input: truncated tokens, offsets pointing
/// before the start of the output, or a result that is not exactly
/// `expected_len` bytes.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit += read_run_len(input, &mut pos)?;
        }
        let end = pos.checked_add(lit).ok_or("lz: literal overflow")?;
        if end > input.len() {
            return Err("lz: truncated literals");
        }
        out.extend_from_slice(&input[pos..end]);
        pos = end;
        if pos == input.len() {
            break; // final token: literals only
        }
        if pos + 2 > input.len() {
            return Err("lz: truncated offset");
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        let mut mlen = (token & 0x0f) as usize + MIN_MATCH;
        if mlen == MIN_MATCH + 15 {
            mlen += read_run_len(input, &mut pos)?;
        }
        if offset == 0 || offset > out.len() {
            return Err("lz: bad match offset");
        }
        // Matches may overlap their own output (offset < len), so copy
        // byte-at-a-time from the already-written tail.
        let start = out.len() - offset;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
        if out.len() > expected_len {
            return Err("lz: output exceeds expected length");
        }
    }
    if out.len() != expected_len {
        return Err("lz: output length mismatch");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("decompresses");
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips_edge_cases() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"abcde");
        roundtrip(&[0u8; 10_000]);
        roundtrip(
            "the quick brown fox jumps over the lazy dog "
                .repeat(50)
                .as_bytes(),
        );
    }

    #[test]
    fn roundtrips_incompressible_bytes() {
        // A seeded xorshift stream: no 4-byte match survives, so the
        // whole input travels as one literal run with extensions.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrips_overlapping_matches() {
        // Period-1 and period-3 repetitions force offset < match length.
        roundtrip(&[7u8; 300]);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.extend_from_slice(b"xyz");
        }
        roundtrip(&data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"abcdefgh".repeat(512);
        let packed = compress(&data);
        assert!(
            packed.len() * 10 < data.len(),
            "{} vs {}",
            packed.len(),
            data.len()
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let data = b"deterministic deterministic deterministic".repeat(7);
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(decompress(&[0xf0], 100).is_err()); // truncated run length
        assert!(decompress(&[0x20, b'a'], 2).is_err()); // truncated literals
        assert!(decompress(&[0x10, b'a', 0x00], 5).is_err()); // truncated offset
        assert!(decompress(&[0x10, b'a', 0x05, 0x00, 0x00], 6).is_err()); // offset past start
        assert!(decompress(&[0x20, b'a', b'b'], 9).is_err()); // wrong length
    }
}
