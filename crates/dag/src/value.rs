//! Dynamic record model shared by every operator in a dataflow program.
//!
//! Pado moves records between operators that are compiled separately from
//! the user program, so the engine works over a dynamically-typed [`Value`]
//! rather than a generic element type. The typed [`crate::Pipeline`] builder
//! converts user closures into functions over [`Value`]s.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Process-wide count of [`Value`] clones, kept so tests and benches can
/// prove the data plane shares blocks instead of copying records. The
/// counter costs one relaxed increment *per clone*, so it is free exactly
/// where the zero-copy plane succeeds in not cloning.
static CLONE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Total `Value` clones performed by this process so far.
///
/// Composite values count recursively: cloning a `Pair` increments once
/// for the pair and once for each component, while `List`/`Vector`/`Str`
/// payloads are reference counted and count as a single clone.
pub fn clone_count() -> u64 {
    CLONE_COUNT.load(AtomicOrdering::Relaxed)
}

/// A single data record flowing through a dataflow program.
///
/// `Value` is cheaply cloneable: large payloads (`Str`, `Bytes`, `List`,
/// `Vector`) are reference counted. Floating point values order and hash by
/// their IEEE-754 total order so that records containing them can be used as
/// shuffle keys deterministically.
///
/// # Examples
///
/// ```
/// use pado_dag::Value;
///
/// let record = Value::pair(Value::from("doc-1"), Value::from(42i64));
/// assert_eq!(record.key().unwrap(), &Value::from("doc-1"));
/// assert_eq!(record.val().unwrap().as_i64(), Some(42));
/// ```
#[derive(Debug, Default)]
pub enum Value {
    /// The unit record, used by operators that only signal completion.
    #[default]
    Unit,
    /// A signed 64-bit integer.
    I64(i64),
    /// A 64-bit float; ordered and hashed by total order.
    F64(f64),
    /// An immutable shared string.
    Str(Arc<str>),
    /// An immutable shared byte buffer.
    Bytes(Arc<[u8]>),
    /// A key/value pair; the unit of keyed shuffles.
    Pair(Box<Value>, Box<Value>),
    /// A shared list of records, e.g. the grouped values of a `GroupByKey`.
    List(Arc<Vec<Value>>),
    /// A shared dense numeric vector, used heavily by the ML workloads.
    Vector(Arc<Vec<f64>>),
}

impl Value {
    /// Builds a key/value pair record.
    pub fn pair(key: Value, val: Value) -> Value {
        Value::Pair(Box::new(key), Box::new(val))
    }

    /// Builds a list record from owned values.
    pub fn list(values: Vec<Value>) -> Value {
        Value::List(Arc::new(values))
    }

    /// Builds a dense vector record from owned floats.
    pub fn vector(values: Vec<f64>) -> Value {
        Value::Vector(Arc::new(values))
    }

    /// Returns the key of a `Pair`, or `None` for any other variant.
    pub fn key(&self) -> Option<&Value> {
        match self {
            Value::Pair(k, _) => Some(k),
            _ => None,
        }
    }

    /// Returns the value of a `Pair`, or `None` for any other variant.
    pub fn val(&self) -> Option<&Value> {
        match self {
            Value::Pair(_, v) => Some(v),
            _ => None,
        }
    }

    /// Consumes a `Pair`, returning its parts, or `None` otherwise.
    pub fn into_pair(self) -> Option<(Value, Value)> {
        match self {
            Value::Pair(k, v) => Some((*k, *v)),
            _ => None,
        }
    }

    /// Returns the integer payload, or `None` for any other variant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened losslessly where
    /// possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload, or `None` for any other variant.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the vector payload, or `None` for any other variant.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Exact serialized size in bytes: always equal to
    /// `codec::encode(self).len()` (one tag byte per node, an 8-byte
    /// payload per scalar, a 4-byte length prefix per variable-length
    /// payload). The runtime's store budgets and transfer accounting use
    /// this, so it must never drift from what a spill or push actually
    /// writes; `codec_properties` asserts the equality by proptest.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::I64(_) | Value::F64(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
            Value::Bytes(b) => 1 + 4 + b.len(),
            Value::Pair(k, v) => 1 + k.size_bytes() + v.size_bytes(),
            Value::List(l) => 1 + 4 + l.iter().map(Value::size_bytes).sum::<usize>(),
            Value::Vector(v) => 1 + 4 + v.len() * 8,
        }
    }

    /// Discriminant index used for cross-variant ordering.
    fn tag(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::I64(_) => 1,
            Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Bytes(_) => 4,
            Value::Pair(_, _) => 5,
            Value::List(_) => 6,
            Value::Vector(_) => 7,
        }
    }
}

impl Clone for Value {
    fn clone(&self) -> Self {
        CLONE_COUNT.fetch_add(1, AtomicOrdering::Relaxed);
        match self {
            Value::Unit => Value::Unit,
            Value::I64(i) => Value::I64(*i),
            Value::F64(x) => Value::F64(*x),
            Value::Str(s) => Value::Str(Arc::clone(s)),
            Value::Bytes(b) => Value::Bytes(Arc::clone(b)),
            Value::Pair(k, v) => Value::Pair(k.clone(), v.clone()),
            Value::List(l) => Value::List(Arc::clone(l)),
            Value::Vector(v) => Value::Vector(Arc::clone(v)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Pair(ak, av), Pair(bk, bv)) => ak.cmp(bk).then_with(|| av.cmp(bv)),
            (List(a), List(b)) => a.iter().cmp(b.iter()),
            (Vector(a), Vector(b)) => {
                let mut it = a.iter().zip(b.iter());
                loop {
                    match it.next() {
                        Some((x, y)) => match x.total_cmp(y) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        },
                        None => return a.len().cmp(&b.len()),
                    }
                }
            }
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Value::Unit => {}
            Value::I64(i) => i.hash(state),
            Value::F64(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::Pair(k, v) => {
                k.hash(state);
                v.hash(state);
            }
            Value::List(l) => {
                state.write_usize(l.len());
                for v in l.iter() {
                    v.hash(state);
                }
            }
            Value::Vector(v) => {
                state.write_usize(v.len());
                for x in v.iter() {
                    x.to_bits().hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::I64(i) => write!(f, "{i}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Pair(k, v) => write!(f, "({k}, {v})"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Vector(v) => write!(f, "<vec{}>", v.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::vector(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn pair_accessors() {
        let p = Value::pair(Value::from("k"), Value::from(7i64));
        assert_eq!(p.key().unwrap().as_str(), Some("k"));
        assert_eq!(p.val().unwrap().as_i64(), Some(7));
        let (k, v) = p.into_pair().unwrap();
        assert_eq!(k, Value::from("k"));
        assert_eq!(v, Value::from(7i64));
    }

    #[test]
    fn non_pair_accessors_return_none() {
        assert!(Value::Unit.key().is_none());
        assert!(Value::from(1i64).val().is_none());
        assert!(Value::from(1.0).into_pair().is_none());
        assert!(Value::Unit.as_i64().is_none());
        assert!(Value::from("x").as_f64().is_none());
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::F64(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
        // NaN sorts after all finite values under total order.
        assert!(nan > Value::F64(f64::INFINITY));
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::pair(Value::from("x"), Value::vector(vec![1.0, 2.0]));
        let b = Value::pair(Value::from("x"), Value::vector(vec![1.0, 2.0]));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_variant_ordering_is_total() {
        let vals = vec![
            Value::Unit,
            Value::from(3i64),
            Value::from(1.5),
            Value::from("s"),
            Value::list(vec![Value::Unit]),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        // Sorting is deterministic and stable across shuffles.
        let mut shuffled = vals;
        shuffled.reverse();
        shuffled.sort();
        assert_eq!(sorted, shuffled);
    }

    #[test]
    fn integer_widening_in_as_f64() {
        assert_eq!(Value::from(4i64).as_f64(), Some(4.0));
    }

    #[test]
    fn size_bytes_matches_encoded_size() {
        let samples = vec![
            Value::Unit,
            Value::from(1i64),
            Value::from(f64::NAN),
            Value::from("héllo"),
            Value::Bytes(Arc::from(&b"\x00\xff"[..])),
            Value::pair(Value::from(1i64), Value::from(2i64)),
            Value::list(vec![Value::from("x"), Value::Unit]),
            Value::vector(vec![0.0; 100]),
        ];
        for v in samples {
            assert_eq!(
                v.size_bytes(),
                crate::codec::encode(&v).expect("encodes").len(),
                "size_bytes drifted from the codec for {v:?}"
            );
        }
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::pair(Value::from(1i64), Value::from(2i64)).to_string(),
            "(1, 2)"
        );
        assert_eq!(
            Value::list(vec![Value::from(1i64), Value::from(2i64)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::list(vec![Value::from(1i64)]);
        let b = Value::list(vec![Value::from(1i64), Value::from(0i64)]);
        assert!(a < b);
    }
}
