//! Typed column layouts for [`crate::Block`].
//!
//! A block analyzes its rows once and, when every record shares one of
//! the four scalar shapes (i64 / f64 / str / bytes) — or is a `Pair` of
//! two such scalars — stores them as flat column vectors instead of
//! boxed [`Value`] trees. Columns are what the vectorized kernels in
//! `pado-core` operate on and what the block codec compresses; anything
//! heterogeneous (or containing `Unit`/`List`/`Vector`) stays on the
//! row-of-`Value` fallback, which remains the semantic oracle.
//!
//! Invariants the rest of the engine relies on:
//!
//! - Analysis is deterministic: the same rows always produce the same
//!   layout (or the same `None`).
//! - Materializing rows back out of columns constructs *fresh* values —
//!   it never clones a `Value`, so the clone-count proofs see zero.
//! - `f64` columns preserve raw bits (NaN payloads, signed zeros), and
//!   column equality/ordering on them is bit-level, exactly matching
//!   [`Value`]'s total order for grouping purposes.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::value::Value;

/// Variable-length byte items (strings or byte blobs) packed into one
/// contiguous buffer with cumulative `u32` end offsets.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Packed {
    ends: Vec<u32>,
    bytes: Vec<u8>,
}

impl Packed {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when no items are packed.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The `i`-th item's bytes.
    pub fn get(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.bytes[start..self.ends[i] as usize]
    }

    /// Appends an item; `false` if the cumulative size would overflow
    /// the `u32` offsets (the caller then falls back to rows).
    pub fn push(&mut self, item: &[u8]) -> bool {
        let Some(end) = self
            .bytes
            .len()
            .checked_add(item.len())
            .and_then(|e| u32::try_from(e).ok())
        else {
            return false;
        };
        self.bytes.extend_from_slice(item);
        self.ends.push(end);
        true
    }

    /// The packed byte buffer (all items concatenated).
    pub fn buffer(&self) -> &[u8] {
        &self.bytes
    }
}

/// One homogeneous column of scalar values.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarCol {
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats, bit-exact.
    F64(Vec<f64>),
    /// UTF-8 strings, packed.
    Str(Packed),
    /// Byte blobs, packed.
    Bytes(Packed),
}

impl ScalarCol {
    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            ScalarCol::I64(v) => v.len(),
            ScalarCol::F64(v) => v.len(),
            ScalarCol::Str(p) | ScalarCol::Bytes(p) => p.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh empty column of the same scalar kind.
    pub fn empty_like(&self) -> ScalarCol {
        match self {
            ScalarCol::I64(_) => ScalarCol::I64(Vec::new()),
            ScalarCol::F64(_) => ScalarCol::F64(Vec::new()),
            ScalarCol::Str(_) => ScalarCol::Str(Packed::default()),
            ScalarCol::Bytes(_) => ScalarCol::Bytes(Packed::default()),
        }
    }

    /// Constructs a fresh [`Value`] for position `i` (never clones).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ScalarCol::I64(v) => Value::I64(v[i]),
            ScalarCol::F64(v) => Value::F64(v[i]),
            ScalarCol::Str(p) => Value::Str(Arc::from(
                std::str::from_utf8(p.get(i)).expect("str column holds valid utf-8"),
            )),
            ScalarCol::Bytes(p) => Value::Bytes(Arc::from(p.get(i))),
        }
    }

    /// Appends the value at `src[i]` to `self`. Both columns must be the
    /// same kind (they always come from one analyzed source column).
    pub fn push_from(&mut self, src: &ScalarCol, i: usize) {
        match (self, src) {
            (ScalarCol::I64(dst), ScalarCol::I64(s)) => dst.push(s[i]),
            (ScalarCol::F64(dst), ScalarCol::F64(s)) => dst.push(s[i]),
            (ScalarCol::Str(dst), ScalarCol::Str(s))
            | (ScalarCol::Bytes(dst), ScalarCol::Bytes(s)) => {
                // A subset of a column that already fit in u32 offsets
                // always fits again.
                assert!(dst.push(s.get(i)), "subset column overflowed offsets");
            }
            _ => panic!("push_from across column kinds"),
        }
    }

    /// Appends every value of `other`, failing (`false`) on a kind
    /// mismatch or packed-offset overflow.
    pub fn append(&mut self, other: &ScalarCol) -> bool {
        match (self, other) {
            (ScalarCol::I64(dst), ScalarCol::I64(s)) => {
                dst.extend_from_slice(s);
                true
            }
            (ScalarCol::F64(dst), ScalarCol::F64(s)) => {
                dst.extend_from_slice(s);
                true
            }
            (ScalarCol::Str(dst), ScalarCol::Str(s))
            | (ScalarCol::Bytes(dst), ScalarCol::Bytes(s)) => {
                (0..s.len()).all(|i| dst.push(s.get(i)))
            }
            _ => false,
        }
    }

    /// Hashes position `i` exactly as `Value::hash` would hash the
    /// corresponding value (tag byte first, then the payload through the
    /// same std `Hash` impls), so columnar shuffle routing lands every
    /// record in the same bucket as the row path.
    pub fn hash_at<H: Hasher>(&self, i: usize, state: &mut H) {
        match self {
            ScalarCol::I64(v) => {
                state.write_u8(1);
                v[i].hash(state);
            }
            ScalarCol::F64(v) => {
                state.write_u8(2);
                v[i].to_bits().hash(state);
            }
            ScalarCol::Str(p) => {
                state.write_u8(3);
                std::str::from_utf8(p.get(i))
                    .expect("str column holds valid utf-8")
                    .hash(state);
            }
            ScalarCol::Bytes(p) => {
                state.write_u8(4);
                p.get(i).hash(state);
            }
        }
    }

    /// Bit-level equality of two positions — the same equivalence the
    /// row path's `BTreeMap<Value, _>` uses (`total_cmp` for floats).
    pub fn eq_at(&self, a: usize, b: usize) -> bool {
        match self {
            ScalarCol::I64(v) => v[a] == v[b],
            ScalarCol::F64(v) => v[a].to_bits() == v[b].to_bits(),
            ScalarCol::Str(p) | ScalarCol::Bytes(p) => p.get(a) == p.get(b),
        }
    }

    /// A stable permutation of `0..len` sorting by value in exactly the
    /// order `BTreeMap<Value, _>` iterates (ascending `Ord`, floats by
    /// `total_cmp`); ties keep their original positions, so grouped
    /// values appear in input order.
    pub fn sort_perm(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.len() as u32).collect();
        match self {
            ScalarCol::I64(v) => idx.sort_by_key(|&i| v[i as usize]),
            ScalarCol::F64(v) => {
                // Monotone map of the IEEE bits onto u64 reproducing
                // `f64::total_cmp`'s order.
                let keys: Vec<u64> = v.iter().map(|x| total_order_key(*x)).collect();
                idx.sort_by_key(|&i| keys[i as usize]);
            }
            ScalarCol::Str(p) | ScalarCol::Bytes(p) => {
                idx.sort_by(|&a, &b| p.get(a as usize).cmp(p.get(b as usize)));
            }
        }
        idx
    }

    /// Bytes this column would occupy in the row (per-record) encoding:
    /// the sum of `Value::size_bytes` over its values.
    pub fn row_encoded_bytes(&self) -> usize {
        match self {
            ScalarCol::I64(v) => v.len() * 9,
            ScalarCol::F64(v) => v.len() * 9,
            ScalarCol::Str(p) | ScalarCol::Bytes(p) => p.len() * 5 + p.buffer().len(),
        }
    }
}

/// Maps IEEE-754 bits to a u64 whose unsigned order equals
/// [`f64::total_cmp`]'s order.
fn total_order_key(x: f64) -> u64 {
    let b = x.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | (1 << 63))
}

/// The column layout of one block.
#[derive(Clone, Debug, PartialEq)]
pub enum Columns {
    /// Every record is one scalar.
    Scalar(ScalarCol),
    /// Every record is a `Pair` of two scalars of fixed kinds.
    Pair {
        /// The pairs' keys.
        keys: ScalarCol,
        /// The pairs' values.
        vals: ScalarCol,
    },
}

impl Columns {
    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            Columns::Scalar(c) => c.len(),
            Columns::Pair { keys, .. } => keys.len(),
        }
    }

    /// True when the layout holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Constructs a fresh [`Value`] for record `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Columns::Scalar(c) => c.value_at(i),
            Columns::Pair { keys, vals } => Value::pair(keys.value_at(i), vals.value_at(i)),
        }
    }

    /// Materializes all records as fresh row values.
    pub fn rows(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value_at(i)).collect()
    }

    /// Bytes these records occupy in the row (per-record) encoding, not
    /// counting the batch header.
    pub fn row_encoded_bytes(&self) -> usize {
        match self {
            Columns::Scalar(c) => c.row_encoded_bytes(),
            Columns::Pair { keys, vals } => {
                keys.len() + keys.row_encoded_bytes() + vals.row_encoded_bytes()
            }
        }
    }
}

/// A growing column that commits to a kind on the first value and
/// rejects (`false`) anything that does not match.
struct ColBuilder {
    col: ScalarCol,
}

impl ColBuilder {
    fn for_value(v: &Value) -> Option<ColBuilder> {
        let col = match v {
            Value::I64(_) => ScalarCol::I64(Vec::new()),
            Value::F64(_) => ScalarCol::F64(Vec::new()),
            Value::Str(_) => ScalarCol::Str(Packed::default()),
            Value::Bytes(_) => ScalarCol::Bytes(Packed::default()),
            _ => return None,
        };
        Some(ColBuilder { col })
    }

    fn push(&mut self, v: &Value) -> bool {
        match (&mut self.col, v) {
            (ScalarCol::I64(c), Value::I64(x)) => {
                c.push(*x);
                true
            }
            (ScalarCol::F64(c), Value::F64(x)) => {
                c.push(*x);
                true
            }
            (ScalarCol::Str(p), Value::Str(s)) => p.push(s.as_bytes()),
            (ScalarCol::Bytes(p), Value::Bytes(b)) => p.push(b),
            _ => false,
        }
    }
}

/// Analyzes rows into a column layout, or `None` when the data is
/// heterogeneous, empty, contains non-columnar shapes (`Unit`, `List`,
/// `Vector`, nested pairs), or would overflow the packed `u32` offsets.
pub fn analyze(rows: &[Value]) -> Option<Columns> {
    let first = rows.first()?;
    match first {
        Value::Pair(k0, v0) => {
            let mut kb = ColBuilder::for_value(k0)?;
            let mut vb = ColBuilder::for_value(v0)?;
            for r in rows {
                let Value::Pair(k, v) = r else { return None };
                if !kb.push(k) || !vb.push(v) {
                    return None;
                }
            }
            Some(Columns::Pair {
                keys: kb.col,
                vals: vb.col,
            })
        }
        _ => {
            let mut b = ColBuilder::for_value(first)?;
            for r in rows {
                if !b.push(r) {
                    return None;
                }
            }
            Some(Columns::Scalar(b.col))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_value(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    fn hash_col(c: &ScalarCol, i: usize) -> u64 {
        let mut h = DefaultHasher::new();
        c.hash_at(i, &mut h);
        h.finish()
    }

    #[test]
    fn analyzes_homogeneous_scalars() {
        let rows: Vec<Value> = (0..10).map(Value::from).collect();
        let cols = analyze(&rows).expect("columnar");
        assert!(matches!(cols, Columns::Scalar(ScalarCol::I64(_))));
        assert_eq!(cols.rows(), rows);
    }

    #[test]
    fn analyzes_pairs_of_scalars() {
        let rows: Vec<Value> = (0..10)
            .map(|i| Value::pair(Value::from(format!("k{}", i % 3)), Value::from(i as f64)))
            .collect();
        let cols = analyze(&rows).expect("columnar");
        assert!(matches!(
            cols,
            Columns::Pair {
                keys: ScalarCol::Str(_),
                vals: ScalarCol::F64(_)
            }
        ));
        assert_eq!(cols.rows(), rows);
        assert_eq!(
            cols.row_encoded_bytes(),
            rows.iter().map(Value::size_bytes).sum()
        );
    }

    #[test]
    fn falls_back_on_heterogeneous_and_nested() {
        assert!(analyze(&[]).is_none());
        assert!(analyze(&[Value::Unit]).is_none());
        assert!(analyze(&[Value::from(1i64), Value::from(1.0)]).is_none());
        assert!(analyze(&[Value::list(vec![Value::from(1i64)])]).is_none());
        assert!(analyze(&[Value::vector(vec![1.0])]).is_none());
        assert!(analyze(&[Value::pair(
            Value::from(1i64),
            Value::pair(Value::from(2i64), Value::from(3i64)),
        )])
        .is_none());
        assert!(analyze(&[
            Value::pair(Value::from(1i64), Value::from(1i64)),
            Value::from(2i64),
        ])
        .is_none());
    }

    #[test]
    fn nan_bits_and_signed_zero_survive_columns() {
        let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
        let rows = vec![
            Value::from(weird),
            Value::from(-0.0f64),
            Value::from(0.0f64),
        ];
        let cols = analyze(&rows).expect("columnar");
        let back = cols.rows();
        for (a, b) in rows.iter().zip(&back) {
            match (a, b) {
                (Value::F64(x), Value::F64(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => panic!("variant changed"),
            }
        }
        if let Columns::Scalar(c) = &cols {
            assert!(!c.eq_at(1, 2), "-0.0 and +0.0 must stay distinct keys");
        }
    }

    #[test]
    fn column_hash_matches_value_hash() {
        let rows = vec![Value::from(-7i64), Value::from(42i64)];
        if let Some(Columns::Scalar(c)) = analyze(&rows) {
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(hash_col(&c, i), hash_value(r), "i64 hash diverged at {i}");
            }
        } else {
            panic!("expected i64 column");
        }
        let rows = vec![Value::from("alpha"), Value::from("")];
        if let Some(Columns::Scalar(c)) = analyze(&rows) {
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(hash_col(&c, i), hash_value(r), "str hash diverged at {i}");
            }
        } else {
            panic!("expected str column");
        }
        let rows = vec![
            Value::Bytes(Arc::from(&b"\x00\xff"[..])),
            Value::Bytes(Arc::from(&b""[..])),
        ];
        if let Some(Columns::Scalar(c)) = analyze(&rows) {
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(hash_col(&c, i), hash_value(r), "bytes hash diverged at {i}");
            }
        } else {
            panic!("expected bytes column");
        }
        let rows = vec![Value::from(f64::NAN), Value::from(-0.0f64)];
        if let Some(Columns::Scalar(c)) = analyze(&rows) {
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(hash_col(&c, i), hash_value(r), "f64 hash diverged at {i}");
            }
        } else {
            panic!("expected f64 column");
        }
    }

    #[test]
    fn sort_perm_matches_value_ordering() {
        use std::collections::BTreeMap;
        let vals = [3.5, f64::NAN, -0.0, 0.0, -f64::NAN, f64::INFINITY, -1.0];
        let rows: Vec<Value> = vals.iter().map(|&x| Value::from(x)).collect();
        let Some(Columns::Scalar(c)) = analyze(&rows) else {
            panic!("expected f64 column")
        };
        let perm = c.sort_perm();
        // Reference order: BTreeMap over Value keys (total_cmp),
        // insertion order within a key.
        let mut groups: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
        for (i, r) in rows.iter().enumerate() {
            groups.entry(r.clone()).or_default().push(i as u32);
        }
        let expected: Vec<u32> = groups.into_values().flatten().collect();
        assert_eq!(perm, expected);
    }

    #[test]
    fn materializing_rows_never_clones() {
        let rows: Vec<Value> = (0..100)
            .map(|i| Value::pair(Value::from(format!("k{i}")), Value::from(i)))
            .collect();
        let cols = analyze(&rows).expect("columnar");
        let before = crate::value::clone_count();
        let back = cols.rows();
        assert_eq!(
            crate::value::clone_count(),
            before,
            "columns->rows must not clone"
        );
        assert_eq!(back, rows);
    }
}
