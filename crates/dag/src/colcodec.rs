//! The block codec: serializes whole [`Block`]s column-at-a-time with
//! per-column codecs, then LZ-compresses the result when that wins.
//!
//! Wire format:
//!
//! ```text
//! block    := <compress flag: u8>  body-or-lz
//!             flag 0: body follows raw
//!             flag 1: <u32 LE body len> <lz bytes>  (see crate::lz)
//! body     := <layout: u8> payload
//!             layout 0: rows     — codec::encode_batch of the records
//!             layout 1: scalar   — column
//!             layout 2: pair     — column(keys) column(vals)
//! column   := <kind: u8 (0 i64, 1 f64, 2 str, 3 bytes)> <u32 LE count>
//!             kind i64:  <codec: u8> (0 delta-zigzag varints,
//!                                     1 dictionary: u16 LE count,
//!                                       8-byte LE entries sorted,
//!                                       u8 indices)
//!             kind f64:  raw LE bit patterns, 8 bytes each
//!             kind str/bytes: <codec: u8>
//!                        (0 packed: varint length per item, then blob;
//!                         1 dictionary: u16 LE count, entries as
//!                           varint length + bytes sorted, u8 indices)
//! ```
//!
//! Every codec choice (delta vs dictionary, packed vs dictionary,
//! compressed vs raw) is decided by comparing exact encoded sizes, which
//! are pure functions of the column contents — so re-encoding a decoded
//! block reproduces the same bytes, and `block_bytes` accounting is
//! stable across spill/reload cycles.

use std::collections::BTreeMap;

use crate::block::{block_from_columns, block_from_vec, Block, BlockInner};
use crate::codec::{decode_batch, encode_batch, Reader};
use crate::column::{Columns, Packed, ScalarCol};
use crate::error::{DagError, Result};
use crate::lz;

const LAYOUT_ROWS: u8 = 0;
const LAYOUT_SCALAR: u8 = 1;
const LAYOUT_PAIR: u8 = 2;

const KIND_I64: u8 = 0;
const KIND_F64: u8 = 1;
const KIND_STR: u8 = 2;
const KIND_BYTES: u8 = 3;

const CODEC_DIRECT: u8 = 0;
const CODEC_DICT: u8 = 1;

/// Largest dictionary a column codec will consider (indices are `u8`).
const DICT_MAX: usize = 256;

fn push_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(r: &mut Reader<'_>) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.u8()?;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(DagError::Codec("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Delta-zigzag varint body for an i64 column (previous value starts
/// at 0; deltas wrap).
fn enc_i64_delta(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 2);
    let mut prev = 0i64;
    for &x in vals {
        push_varint(zigzag(x.wrapping_sub(prev)), &mut out);
        prev = x;
    }
    out
}

/// Dictionary body for an i64 column, or `None` when there are more
/// than [`DICT_MAX`] distinct values.
fn enc_i64_dict(vals: &[i64]) -> Option<Vec<u8>> {
    let mut dict: BTreeMap<i64, u8> = BTreeMap::new();
    for &x in vals {
        if !dict.contains_key(&x) {
            if dict.len() == DICT_MAX {
                return None;
            }
            dict.insert(x, 0);
        }
    }
    for (i, idx) in dict.values_mut().enumerate() {
        *idx = i as u8;
    }
    let mut out = Vec::with_capacity(2 + dict.len() * 8 + vals.len());
    out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
    for &entry in dict.keys() {
        out.extend_from_slice(&entry.to_le_bytes());
    }
    for &x in vals {
        out.push(dict[&x]);
    }
    Some(out)
}

/// Packed body for a str/bytes column: varint item lengths, then the
/// concatenated blob.
fn enc_packed_direct(p: &Packed) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.buffer().len() + p.len() * 2);
    for i in 0..p.len() {
        push_varint(p.get(i).len() as u64, &mut out);
    }
    out.extend_from_slice(p.buffer());
    out
}

/// Dictionary body for a str/bytes column, or `None` past [`DICT_MAX`]
/// distinct items.
fn enc_packed_dict(p: &Packed) -> Option<Vec<u8>> {
    let mut dict: BTreeMap<&[u8], u8> = BTreeMap::new();
    for i in 0..p.len() {
        let item = p.get(i);
        if !dict.contains_key(item) {
            if dict.len() == DICT_MAX {
                return None;
            }
            dict.insert(item, 0);
        }
    }
    for (i, idx) in dict.values_mut().enumerate() {
        *idx = i as u8;
    }
    let mut out = Vec::new();
    out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
    for &entry in dict.keys() {
        push_varint(entry.len() as u64, &mut out);
        out.extend_from_slice(entry);
    }
    for i in 0..p.len() {
        out.push(dict[p.get(i)]);
    }
    Some(out)
}

/// Appends one column (kind, count, codec choice, body) to `out`.
fn enc_col(col: &ScalarCol, out: &mut Vec<u8>) -> Result<()> {
    let n = u32::try_from(col.len()).map_err(|_| DagError::Codec("column exceeds u32::MAX"))?;
    match col {
        ScalarCol::I64(vals) => {
            out.push(KIND_I64);
            out.extend_from_slice(&n.to_le_bytes());
            let direct = enc_i64_delta(vals);
            match enc_i64_dict(vals) {
                Some(dict) if dict.len() < direct.len() => {
                    out.push(CODEC_DICT);
                    out.extend_from_slice(&dict);
                }
                _ => {
                    out.push(CODEC_DIRECT);
                    out.extend_from_slice(&direct);
                }
            }
        }
        ScalarCol::F64(vals) => {
            out.push(KIND_F64);
            out.extend_from_slice(&n.to_le_bytes());
            for x in vals {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        ScalarCol::Str(p) | ScalarCol::Bytes(p) => {
            out.push(if matches!(col, ScalarCol::Str(_)) {
                KIND_STR
            } else {
                KIND_BYTES
            });
            out.extend_from_slice(&n.to_le_bytes());
            let direct = enc_packed_direct(p);
            match enc_packed_dict(p) {
                Some(dict) if dict.len() < direct.len() => {
                    out.push(CODEC_DICT);
                    out.extend_from_slice(&dict);
                }
                _ => {
                    out.push(CODEC_DIRECT);
                    out.extend_from_slice(&direct);
                }
            }
        }
    }
    Ok(())
}

fn dec_i64_body(r: &mut Reader<'_>, n: usize) -> Result<Vec<i64>> {
    match r.u8()? {
        CODEC_DIRECT => {
            let mut vals = Vec::with_capacity(n.min(1 << 20));
            let mut prev = 0i64;
            for _ in 0..n {
                prev = prev.wrapping_add(unzigzag(read_varint(r)?));
                vals.push(prev);
            }
            Ok(vals)
        }
        CODEC_DICT => {
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]) as usize;
            let mut entries = Vec::with_capacity(count.min(DICT_MAX));
            for _ in 0..count {
                entries.push(r.u64()? as i64);
            }
            let mut vals = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let idx = r.u8()? as usize;
                vals.push(
                    *entries
                        .get(idx)
                        .ok_or(DagError::Codec("dictionary index out of range"))?,
                );
            }
            Ok(vals)
        }
        _ => Err(DagError::Codec("unknown column codec")),
    }
}

fn packed_from_items<'a>(items: impl Iterator<Item = &'a [u8]>) -> Result<Packed> {
    let mut p = Packed::default();
    for item in items {
        if !p.push(item) {
            return Err(DagError::Codec("packed column overflows u32 offsets"));
        }
    }
    Ok(p)
}

fn dec_packed_body(r: &mut Reader<'_>, n: usize) -> Result<Packed> {
    match r.u8()? {
        CODEC_DIRECT => {
            let mut lens = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                lens.push(
                    usize::try_from(read_varint(r)?)
                        .map_err(|_| DagError::Codec("item length overflow"))?,
                );
            }
            let mut p = Packed::default();
            for len in lens {
                let item = r.take(len)?;
                if !p.push(item) {
                    return Err(DagError::Codec("packed column overflows u32 offsets"));
                }
            }
            Ok(p)
        }
        CODEC_DICT => {
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]) as usize;
            let mut entries: Vec<&[u8]> = Vec::with_capacity(count.min(DICT_MAX));
            for _ in 0..count {
                let len = usize::try_from(read_varint(r)?)
                    .map_err(|_| DagError::Codec("item length overflow"))?;
                entries.push(r.take(len)?);
            }
            let mut items = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let idx = r.u8()? as usize;
                items.push(
                    *entries
                        .get(idx)
                        .ok_or(DagError::Codec("dictionary index out of range"))?,
                );
            }
            packed_from_items(items.into_iter())
        }
        _ => Err(DagError::Codec("unknown column codec")),
    }
}

fn dec_col(r: &mut Reader<'_>) -> Result<ScalarCol> {
    let kind = r.u8()?;
    let n = r.u32()? as usize;
    match kind {
        KIND_I64 => Ok(ScalarCol::I64(dec_i64_body(r, n)?)),
        KIND_F64 => {
            let mut vals = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                vals.push(f64::from_bits(r.u64()?));
            }
            Ok(ScalarCol::F64(vals))
        }
        KIND_STR => {
            let p = dec_packed_body(r, n)?;
            for i in 0..p.len() {
                std::str::from_utf8(p.get(i))
                    .map_err(|_| DagError::Codec("invalid utf-8 in string column"))?;
            }
            Ok(ScalarCol::Str(p))
        }
        KIND_BYTES => Ok(ScalarCol::Bytes(dec_packed_body(r, n)?)),
        _ => Err(DagError::Codec("unknown column kind")),
    }
}

/// Serializes a block: columnar layout when the block has one, the row
/// codec otherwise, LZ-compressed when that is strictly smaller.
///
/// # Errors
///
/// Fails with [`DagError::Codec`] on a length overflowing the format's
/// `u32` fields.
pub fn encode_block(block: &BlockInner) -> Result<Vec<u8>> {
    let mut body = Vec::new();
    match block.columns() {
        Some(Columns::Scalar(c)) => {
            body.push(LAYOUT_SCALAR);
            enc_col(c, &mut body)?;
        }
        Some(Columns::Pair { keys, vals }) => {
            body.push(LAYOUT_PAIR);
            enc_col(keys, &mut body)?;
            enc_col(vals, &mut body)?;
        }
        None => {
            body.push(LAYOUT_ROWS);
            body.extend_from_slice(&encode_batch(block.rows())?);
        }
    }
    let packed = lz::compress(&body);
    let mut out = Vec::with_capacity(body.len() + 1);
    if packed.len() + 5 < body.len() {
        out.push(1);
        out.extend_from_slice(
            &u32::try_from(body.len())
                .map_err(|_| DagError::Codec("block body exceeds u32::MAX"))?
                .to_le_bytes(),
        );
        out.extend_from_slice(&packed);
    } else {
        out.push(0);
        out.extend_from_slice(&body);
    }
    Ok(out)
}

fn decode_body(body: &[u8], encoded_len: usize) -> Result<Block> {
    let mut r = Reader { buf: body, pos: 0 };
    let block = match r.u8()? {
        LAYOUT_ROWS => {
            let rows = decode_batch(&body[r.pos..])?;
            r.pos = body.len();
            block_from_vec(rows)
        }
        LAYOUT_SCALAR => block_from_columns(Columns::Scalar(dec_col(&mut r)?)),
        LAYOUT_PAIR => {
            let keys = dec_col(&mut r)?;
            let vals = dec_col(&mut r)?;
            if keys.len() != vals.len() {
                return Err(DagError::Codec("pair column length mismatch"));
            }
            block_from_columns(Columns::Pair { keys, vals })
        }
        _ => Err(DagError::Codec("unknown block layout"))?,
    };
    if r.pos != body.len() {
        return Err(DagError::Codec("trailing bytes"));
    }
    block.seal_encoded_len(encoded_len);
    Ok(block)
}

/// Deserializes an [`encode_block`] buffer.
///
/// # Errors
///
/// Fails on any malformed input: truncation, trailing bytes, bad
/// compression framing, invalid UTF-8, out-of-range dictionary indices.
pub fn decode_block(buf: &[u8]) -> Result<Block> {
    let mut r = Reader { buf, pos: 0 };
    match r.u8()? {
        0 => decode_body(&buf[1..], buf.len()),
        1 => {
            let raw_len = r.u32()? as usize;
            let body = lz::decompress(&buf[r.pos..], raw_len).map_err(DagError::Codec)?;
            decode_body(&body, buf.len())
        }
        _ => Err(DagError::Codec("unknown compression flag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::analyze;
    use crate::Value;
    use std::sync::Arc;

    fn roundtrip(rows: Vec<Value>) -> usize {
        let block = block_from_vec(rows.clone());
        let bytes = encode_block(&block).expect("encodes");
        let back = decode_block(&bytes).expect("decodes");
        assert_eq!(back.rows(), &rows[..], "rows diverged through the codec");
        assert_eq!(
            back.encoded_len(),
            bytes.len(),
            "sealed size disagrees with the buffer"
        );
        // Re-encoding the decoded block must reproduce the same bytes:
        // the store's accounting relies on this across spill cycles.
        assert_eq!(encode_block(&back).expect("re-encodes"), bytes);
        bytes.len()
    }

    #[test]
    fn roundtrips_every_layout() {
        roundtrip(vec![]);
        roundtrip((0..100).map(Value::from).collect());
        roundtrip((0..100).map(|i| Value::from(i as f64 / 3.0)).collect());
        roundtrip(
            (0..50)
                .map(|i| Value::from(format!("key-{}", i % 7)))
                .collect(),
        );
        roundtrip(
            (0..50)
                .map(|i| Value::Bytes(Arc::from(vec![i as u8; i % 5].as_slice())))
                .collect(),
        );
        roundtrip(
            (0..80)
                .map(|i| Value::pair(Value::from(i % 9), Value::from(format!("v{i}"))))
                .collect(),
        );
        // Heterogeneous → row layout.
        roundtrip(vec![
            Value::Unit,
            Value::from(1i64),
            Value::list(vec![Value::from("x")]),
            Value::vector(vec![1.0, f64::NAN]),
        ]);
    }

    #[test]
    fn nan_payloads_survive_block_codec() {
        let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
        let rows = vec![Value::from(weird), Value::from(-0.0f64)];
        let block = block_from_vec(rows);
        let back = decode_block(&encode_block(&block).unwrap()).unwrap();
        match (&back.rows()[0], &back.rows()[1]) {
            (Value::F64(a), Value::F64(b)) => {
                assert_eq!(a.to_bits(), weird.to_bits());
                assert_eq!(b.to_bits(), (-0.0f64).to_bits());
            }
            _ => panic!("variant changed"),
        }
    }

    #[test]
    fn low_cardinality_ints_use_the_dictionary() {
        // 4096 records over 4 distinct wide-spread values: the delta
        // varints stay wide, the dictionary is one byte per record.
        let rows: Vec<Value> = (0..4096)
            .map(|i| Value::from((i % 4) * 1_000_000_007i64))
            .collect();
        let n = roundtrip(rows.clone());
        let raw = 4 + rows.iter().map(Value::size_bytes).sum::<usize>();
        assert!(
            n < raw / 4,
            "dictionary+lz should beat rows 4x: {n} vs {raw}"
        );
    }

    #[test]
    fn repetitive_strings_compress_well_below_row_encoding() {
        let rows: Vec<Value> = (0..2000)
            .map(|i| Value::pair(Value::from(format!("word-{}", i % 13)), Value::from(1i64)))
            .collect();
        let n = roundtrip(rows.clone());
        let raw = 4 + rows.iter().map(Value::size_bytes).sum::<usize>();
        assert!(
            n < raw / 4,
            "pair dictionaries should beat rows 4x: {n} vs {raw}"
        );
    }

    #[test]
    fn columnar_block_roundtrips_from_columns_side() {
        let rows: Vec<Value> = (0..64)
            .map(|i| Value::pair(Value::from(i), Value::from(i as f64)))
            .collect();
        let cols = analyze(&rows).expect("columnar");
        let block = block_from_columns(cols);
        let bytes = encode_block(&block).unwrap();
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back.rows(), &rows[..]);
    }

    #[test]
    fn malformed_blocks_are_rejected() {
        assert!(decode_block(&[]).is_err());
        assert!(decode_block(&[9]).is_err()); // unknown compression flag
        assert!(decode_block(&[0, 9]).is_err()); // unknown layout
        assert!(decode_block(&[0, LAYOUT_SCALAR, 7]).is_err()); // unknown kind
        let good = encode_block(&block_from_vec((0..10).map(Value::from).collect())).unwrap();
        for cut in 0..good.len() {
            assert!(decode_block(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_block(&trailing).is_err());
    }

    #[test]
    fn i64_extremes_roundtrip_through_deltas() {
        roundtrip(vec![
            Value::from(i64::MIN),
            Value::from(i64::MAX),
            Value::from(0i64),
            Value::from(-1i64),
            Value::from(i64::MIN),
        ]);
    }
}
