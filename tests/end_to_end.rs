//! End-to-end integration tests: the three paper workloads executed for
//! real by the in-process Pado runtime, checked against single-threaded
//! references — with and without container evictions.

use pado::core::runtime::{FaultPlan, LocalCluster};
use pado::workloads::{als, mlr, mr, AlsConfig, MlrConfig, MrConfig};

fn assert_vec_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

#[test]
fn map_reduce_matches_reference() {
    let cfg = MrConfig::default();
    let result = LocalCluster::new(4, 2).run(&mr::dag(&cfg)).unwrap();
    let got = mr::result_to_map(&result.outputs["Out"]);
    assert_eq!(got, mr::reference(&cfg));
}

#[test]
fn map_reduce_matches_reference_under_evictions() {
    let cfg = MrConfig {
        records: 4_000,
        partitions: 12,
        ..MrConfig::default()
    };
    let faults = FaultPlan {
        evictions: vec![(2, 0), (5, 1), (9, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(4, 2)
        .run_with_faults(&mr::dag(&cfg), faults)
        .unwrap();
    let got = mr::result_to_map(&result.outputs["Out"]);
    assert_eq!(got, mr::reference(&cfg));
    assert_eq!(result.metrics.evictions, 3);
    assert!(result.metrics.relaunched_tasks > 0 || result.metrics.evictions > 0);
}

#[test]
fn mlr_matches_reference() {
    let cfg = MlrConfig::default();
    let result = LocalCluster::new(4, 2).run(&mlr::dag(&cfg)).unwrap();
    let out = &result.outputs["Model Out"];
    assert_eq!(out.len(), 1);
    let got = out[0].as_vector().unwrap();
    let want = mlr::reference(&cfg);
    assert_vec_close(got, &want, 1e-9, "model");
}

#[test]
fn mlr_matches_reference_under_evictions() {
    let cfg = MlrConfig {
        iterations: 4,
        ..MlrConfig::default()
    };
    let faults = FaultPlan {
        evictions: vec![(3, 0), (8, 1), (14, 0), (20, 1)],
        ..Default::default()
    };
    let result = LocalCluster::new(3, 2)
        .run_with_faults(&mlr::dag(&cfg), faults)
        .unwrap();
    let got = result.outputs["Model Out"][0].as_vector().unwrap().to_vec();
    let want = mlr::reference(&cfg);
    assert_vec_close(&got, &want, 1e-9, "model under evictions");
    assert_eq!(result.metrics.evictions, 4);
}

#[test]
fn mlr_learns() {
    let cfg = MlrConfig {
        iterations: 20,
        ..MlrConfig::default()
    };
    let result = LocalCluster::new(4, 2).run(&mlr::dag(&cfg)).unwrap();
    let model = result.outputs["Model Out"][0].as_vector().unwrap().to_vec();
    assert!(mlr::accuracy(&cfg, &model) > 0.9);
}

#[test]
fn als_matches_reference() {
    let cfg = AlsConfig::default();
    let result = LocalCluster::new(4, 2).run(&als::dag(&cfg)).unwrap();
    let got = als::result_to_map(&result.outputs["Factors Out"]);
    let want = als::reference(&cfg);
    assert_eq!(got.len(), want.len());
    for (k, v) in &want {
        assert_vec_close(&got[k], v, 1e-9, "item factor");
    }
}

#[test]
fn als_matches_reference_under_evictions() {
    let cfg = AlsConfig {
        iterations: 3,
        ..AlsConfig::default()
    };
    let faults = FaultPlan {
        evictions: vec![(4, 0), (11, 1), (19, 2), (30, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(4, 2)
        .run_with_faults(&als::dag(&cfg), faults)
        .unwrap();
    let got = als::result_to_map(&result.outputs["Factors Out"]);
    let want = als::reference(&cfg);
    assert_eq!(got.len(), want.len());
    for (k, v) in &want {
        assert_vec_close(&got[k], v, 1e-9, "item factor under evictions");
    }
    assert_eq!(result.metrics.evictions, 4);
}

#[test]
fn als_factorization_fits_ratings() {
    let cfg = AlsConfig {
        iterations: 5,
        ..AlsConfig::default()
    };
    let result = LocalCluster::new(4, 2).run(&als::dag(&cfg)).unwrap();
    let got = als::result_to_map(&result.outputs["Factors Out"]);
    assert!(als::rmse(&cfg, &got) < 0.25);
}

#[test]
fn master_failure_resumes_from_snapshot() {
    let cfg = MrConfig {
        records: 3_000,
        partitions: 10,
        ..MrConfig::default()
    };
    let config = pado::core::runtime::RuntimeConfig {
        snapshot_every: 4,
        ..Default::default()
    };
    let faults = FaultPlan {
        master_failure_after: Some(7),
        ..Default::default()
    };
    let result = LocalCluster::new(4, 2)
        .with_config(config)
        .run_with_faults(&mr::dag(&cfg), faults)
        .unwrap();
    let got = mr::result_to_map(&result.outputs["Out"]);
    assert_eq!(got, mr::reference(&cfg));
}

#[test]
fn reserved_failure_recomputes_ancestor_stages() {
    let cfg = MlrConfig {
        iterations: 3,
        ..MlrConfig::default()
    };
    let faults = FaultPlan {
        reserved_failures: vec![(10, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(3, 2)
        .run_with_faults(&mlr::dag(&cfg), faults)
        .unwrap();
    let got = result.outputs["Model Out"][0].as_vector().unwrap().to_vec();
    let want = mlr::reference(&cfg);
    assert_vec_close(&got, &want, 1e-9, "model after reserved failure");
    assert_eq!(result.metrics.reserved_failures, 1);
}

#[test]
fn combined_faults_still_produce_correct_results() {
    let cfg = MrConfig {
        records: 3_000,
        partitions: 12,
        ..MrConfig::default()
    };
    let faults = FaultPlan {
        evictions: vec![(2, 0), (6, 1)],
        reserved_failures: vec![(4, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(4, 3)
        .run_with_faults(&mr::dag(&cfg), faults)
        .unwrap();
    let got = mr::result_to_map(&result.outputs["Out"]);
    assert_eq!(got, mr::reference(&cfg));
}

#[test]
fn partial_aggregation_does_not_change_results() {
    let cfg = MrConfig::default();
    let config = pado::core::runtime::RuntimeConfig {
        partial_aggregation: false,
        ..Default::default()
    };
    let without = LocalCluster::new(4, 2)
        .with_config(config)
        .run(&mr::dag(&cfg))
        .unwrap();
    let with = LocalCluster::new(4, 2).run(&mr::dag(&cfg)).unwrap();
    assert_eq!(
        mr::result_to_map(&without.outputs["Out"]),
        mr::result_to_map(&with.outputs["Out"])
    );
    assert!(with.metrics.records_preaggregated > 0);
}

#[test]
fn caching_saves_side_input_bytes_on_iterative_jobs() {
    let cfg = MlrConfig {
        iterations: 6,
        ..MlrConfig::default()
    };
    // One slot per executor forces several waves of gradient tasks per
    // iteration; waves after the first find the model already cached.
    let config = pado::core::runtime::RuntimeConfig {
        slots_per_executor: 1,
        ..Default::default()
    };
    let result = LocalCluster::new(2, 1)
        .with_config(config)
        .run(&mlr::dag(&cfg))
        .unwrap();
    assert!(
        result.metrics.cache_hits > 0,
        "repeated gradient tasks on the same executor should hit the model cache"
    );
    assert!(result.metrics.side_bytes_saved > 0);
}
