//! Property-based tests over the compiler, the record model, and the
//! runtime's eviction tolerance.

use proptest::prelude::*;

use pado::core::compiler::{compile, partition, place_operators, Placement};
use pado::core::exec::{route, route_hash};
use pado::core::runtime::{FaultPlan, LocalCluster};
use pado::dag::{
    CombineFn, DepType, LogicalDag, Operator, OperatorKind, ParDoFn, SourceFn, SourceKind, Value,
};

/// Builds a random valid logical DAG from a compact genome: for each
/// operator, a kind selector and up to two parent references.
fn dag_from_genome(genome: &[(u8, usize, usize, u8, u8)]) -> LogicalDag {
    let mut dag = LogicalDag::new();
    for (i, &(kind_sel, p1, p2, d1, d2)) in genome.iter().enumerate() {
        let make_dep = |d: u8| match d % 4 {
            0 => DepType::OneToOne,
            1 => DepType::OneToMany,
            2 => DepType::ManyToOne,
            _ => DepType::ManyToMany,
        };
        let is_source = i == 0 || kind_sel % 5 == 0;
        let kind = if is_source {
            OperatorKind::Source {
                kind: if kind_sel % 2 == 0 {
                    SourceKind::Read
                } else {
                    SourceKind::Created
                },
                f: SourceFn::from_vec(vec![Value::Unit]),
            }
        } else {
            match kind_sel % 4 {
                0 | 1 => OperatorKind::ParDo(ParDoFn::per_element(|v, e| e(v.clone()))),
                2 => OperatorKind::GroupByKey,
                _ => OperatorKind::Combine {
                    f: CombineFn::sum_i64(),
                    keyed: kind_sel % 2 == 0,
                },
            }
        };
        let mut op = Operator::new(format!("op{i}"), kind);
        if is_source {
            op.parallelism = Some(1 + (kind_sel as usize % 4));
        }
        let id = dag.add_operator(op);
        if !is_source {
            let a = p1 % id;
            dag.add_edge(a, id, make_dep(d1)).expect("edge a");
            let b = p2 % id;
            if b != a {
                let _ = dag.add_edge(b, id, make_dep(d2));
            }
        }
    }
    dag
}

fn genome_strategy() -> impl Strategy<Value = Vec<(u8, usize, usize, u8, u8)>> {
    proptest::collection::vec(
        (
            any::<u8>(),
            any::<usize>(),
            any::<usize>(),
            any::<u8>(),
            any::<u8>(),
        ),
        2..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Algorithm 1's invariants hold on arbitrary DAGs.
    #[test]
    fn placement_invariants(genome in genome_strategy()) {
        let dag = dag_from_genome(&genome);
        prop_assume!(dag.validate().is_ok());
        let placement = place_operators(&dag).unwrap();
        for op in dag.op_ids() {
            let ins = dag.in_edges(op);
            if ins.iter().any(|e| e.dep.is_wide()) {
                prop_assert_eq!(placement[op], Placement::Reserved);
            }
            if !ins.is_empty()
                && ins.iter().all(|e| e.dep == DepType::OneToOne)
                && ins.iter().all(|e| placement[e.src] == Placement::Reserved)
            {
                prop_assert_eq!(placement[op], Placement::Reserved);
            }
            if ins.is_empty() {
                let expected = match dag.op(op).kind {
                    OperatorKind::Source { kind: SourceKind::Read, .. } => Placement::Transient,
                    _ => Placement::Reserved,
                };
                prop_assert_eq!(placement[op], expected);
            }
        }
    }

    /// Algorithm 2's invariants: every operator belongs to a stage; stage
    /// anchors are reserved or terminal; non-anchor members are transient;
    /// stage parent links point backwards (acyclic).
    #[test]
    fn partition_invariants(genome in genome_strategy()) {
        let dag = dag_from_genome(&genome);
        prop_assume!(dag.validate().is_ok());
        let placement = place_operators(&dag).unwrap();
        let stages = partition(&dag, &placement).unwrap();
        for op in dag.op_ids() {
            prop_assert!(
                !stages.stages_containing(op).is_empty(),
                "operator {} in no stage", op
            );
        }
        for s in &stages.stages {
            let anchor_ok = placement[s.anchor] == Placement::Reserved
                || dag.out_edges(s.anchor).is_empty();
            prop_assert!(anchor_ok);
            for &op in &s.ops {
                if op != s.anchor {
                    prop_assert_eq!(placement[op], Placement::Transient);
                }
            }
            for &p in &s.parents {
                prop_assert!(p < s.id, "stage DAG must be topological");
            }
        }
    }

    /// Physical plans are structurally sound: fused chains are one-to-one
    /// same-placement runs, edges reference live fops, and every logical
    /// operator appears in at least one fop.
    #[test]
    fn plan_invariants(genome in genome_strategy()) {
        let dag = dag_from_genome(&genome);
        prop_assume!(dag.validate().is_ok());
        let plan = compile(&dag).unwrap();
        for fop in &plan.fops {
            prop_assert!(!fop.chain.is_empty());
            prop_assert!(fop.parallelism >= 1);
            for pair in fop.chain.windows(2) {
                let e = dag
                    .in_edges(pair[1])
                    .into_iter()
                    .find(|e| e.src == pair[0])
                    .expect("chain members are connected");
                prop_assert_eq!(e.dep, DepType::OneToOne);
                prop_assert_eq!(plan.placement[pair[0]], plan.placement[pair[1]]);
            }
        }
        for e in &plan.edges {
            prop_assert!(e.src < plan.fops.len());
            prop_assert!(e.dst < plan.fops.len());
            prop_assert!(e.member < plan.fops[e.dst].chain.len());
        }
        for op in dag.op_ids() {
            prop_assert!(
                plan.fops.iter().any(|f| f.chain.contains(&op)),
                "operator {} missing from plan", op
            );
        }
    }

    /// Routing conserves records and sends equal keys to equal buckets.
    #[test]
    fn routing_conserves_records(
        keys in proptest::collection::vec(0i64..50, 0..200),
        parts in 1usize..16,
        src in 0usize..8,
    ) {
        let records = pado::dag::block_from_vec(
            keys.iter()
                .map(|&k| Value::pair(Value::from(k), Value::from(k * 2)))
                .collect(),
        );
        let buckets = route(&records, DepType::ManyToMany, src, parts);
        prop_assert_eq!(buckets.len(), parts);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, records.len());
        for (i, bucket) in buckets.iter().enumerate() {
            for r in bucket.iter() {
                prop_assert_eq!((route_hash(r) % parts as u64) as usize, i);
            }
        }
    }

    /// Value ordering is a total order consistent with equality/hashing.
    #[test]
    fn value_order_total(xs in proptest::collection::vec(any::<i64>(), 0..50)) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let vals: Vec<Value> = xs.iter().map(|&x| {
            if x % 3 == 0 { Value::from(x) }
            else if x % 3 == 1 { Value::from(x as f64 * 0.5) }
            else { Value::pair(Value::from(x), Value::Unit) }
        }).collect();
        let mut sorted = vals.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            prop_assert!(w[0] <= w[1]);
            if w[0] == w[1] {
                let h = |v: &Value| {
                    let mut s = DefaultHasher::new();
                    v.hash(&mut s);
                    s.finish()
                };
                prop_assert_eq!(h(&w[0]), h(&w[1]));
            }
        }
    }

    /// Transient-side partial aggregation never changes combine results.
    #[test]
    fn preaggregation_is_transparent(
        pairs in proptest::collection::vec((0i64..10, -100i64..100), 0..100)
    ) {
        use pado::core::runtime::executor::preaggregate;
        let records: Vec<Value> = pairs
            .iter()
            .map(|&(k, v)| Value::pair(Value::from(k), Value::from(v)))
            .collect();
        let f = CombineFn::sum_i64();
        let direct = preaggregate(records.clone(), &f, true).unwrap();
        // Split arbitrarily, pre-aggregate each half, merge the partials.
        let mid = records.len() / 2;
        let mut partials = preaggregate(records[..mid].to_vec(), &f, true).unwrap();
        partials.extend(preaggregate(records[mid..].to_vec(), &f, true).unwrap());
        let merged = preaggregate(partials, &f, true).unwrap();
        prop_assert_eq!(direct, merged);
    }
}

/// A recursive strategy over arbitrary `Value` trees.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::from),
        any::<f64>().prop_map(Value::from),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..16)
            .prop_map(|b| Value::Bytes(std::sync::Arc::from(b.as_slice()))),
        proptest::collection::vec(any::<f64>(), 0..8).prop_map(Value::vector),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(k, v)| Value::pair(k, v)),
            proptest::collection::vec(inner, 0..4).prop_map(Value::list),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The binary codec round-trips every value tree, single and batched.
    #[test]
    fn codec_roundtrips(v in value_strategy(), batch in proptest::collection::vec(value_strategy(), 0..8)) {
        use pado::dag::codec::{decode, decode_batch, encode, encode_batch};
        prop_assert_eq!(decode(&encode(&v).unwrap()).unwrap(), v);
        prop_assert_eq!(decode_batch(&encode_batch(&batch).unwrap()).unwrap(), batch);
    }

    /// Decoding never panics on arbitrary garbage.
    #[test]
    fn codec_rejects_garbage_gracefully(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = pado::dag::codec::decode(&bytes);
        let _ = pado::dag::codec::decode_batch(&bytes);
    }
}

proptest! {
    // The runtime spawns real threads, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Word-count over the real runtime matches the serial reference for
    /// arbitrary inputs and arbitrary eviction schedules.
    #[test]
    fn runtime_correct_under_random_evictions(
        words in proptest::collection::vec(0u8..6, 1..60),
        partitions in 1usize..6,
        evictions in proptest::collection::vec((1usize..20, 0usize..4), 0..4),
    ) {
        let lines: Vec<Value> = words
            .chunks(4)
            .map(|c| {
                let s: Vec<String> = c.iter().map(|w| format!("w{w}")).collect();
                Value::from(s.join(" "))
            })
            .collect();
        let mut expected = std::collections::BTreeMap::new();
        for line in &lines {
            for w in line.as_str().unwrap().split_whitespace() {
                *expected.entry(w.to_string()).or_insert(0i64) += 1;
            }
        }
        let p = pado::dag::Pipeline::new();
        p.read("Read", partitions, SourceFn::from_vec(lines))
            .par_do(
                "Map",
                ParDoFn::per_element(|line, emit| {
                    for w in line.as_str().unwrap_or("").split_whitespace() {
                        emit(Value::pair(Value::from(w), Value::from(1i64)));
                    }
                }),
            )
            .combine_per_key("Reduce", CombineFn::sum_i64())
            .sink("Out");
        let dag = p.build().unwrap();
        let faults = FaultPlan {
            evictions,
            ..Default::default()
        };
        let result = LocalCluster::new(3, 2).run_with_faults(&dag, faults).unwrap();
        let got: std::collections::BTreeMap<String, i64> = result.outputs["Out"]
            .iter()
            .filter_map(|r| Some((r.key()?.as_str()?.to_string(), r.val()?.as_i64()?)))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
