//! Datacenter walk-through: from idle latency-critical memory to running
//! batch jobs on the harvested containers.
//!
//! Reproduces the paper's §2.1 analysis end to end: generate a synthetic
//! LC-job memory trace, refine it from 5-minute to 1-minute samples with
//! a B-spline, derive transient container lifetimes at three safety
//! margins, then drive the simulated cluster's eviction process with the
//! resulting empirical CDF and run a Map-Reduce job on it with each
//! engine.
//!
//! Run with: `cargo run --release --example datacenter_sim`

use pado::engines::{simulate, Mode, SimConfig};
use pado::simcluster::{EmpiricalDist, LifetimeDist, MIN};
use pado::trace::{analyze, generate, lifetime_row, SynthConfig, PAPER_MARGINS};
use pado::workloads::mr;

fn main() {
    println!("generating a 29-day synthetic LC memory trace...");
    let series = generate(&SynthConfig::default());

    println!("\nsafety-margin analysis (Table 1 shape):");
    let mut high_lifetimes = Vec::new();
    for &margin in &PAPER_MARGINS {
        let a = analyze(&series, margin);
        let row = lifetime_row(&a);
        println!(
            "  margin {:>4}%: p10 {:>3} min  p50 {:>3} min  p90 {:>3} min   collected {:>4.1}% of LC memory",
            margin * 100.0,
            row.p10,
            row.p50,
            row.p90,
            a.collected_fraction * 100.0
        );
        if margin == PAPER_MARGINS[0] {
            high_lifetimes = a.lifetimes_min;
        }
    }

    // Drive the cluster's eviction process with the 0.1 %-margin CDF.
    let dist = LifetimeDist::Empirical(EmpiricalDist::new(
        high_lifetimes.iter().map(|&m| m.max(1) * MIN).collect(),
    ));

    println!("\nrunning 280 GB Map-Reduce on 40 transient + 5 reserved containers");
    println!("with the high-eviction lifetime distribution:\n");
    let (dag, cost) = mr::paper();
    for mode in [Mode::Spark, Mode::SparkCkpt, Mode::Pado] {
        let config = SimConfig {
            lifetimes: dist.clone(),
            ..SimConfig::default()
        };
        let m = simulate(mode, &dag, &cost, config).expect("simulation completes");
        println!(
            "  {:<18} JCT {:>5.1} min   relaunched {:>6.1}%   network {:>6.0} GB   evictions {}",
            mode.name(),
            m.jct_minutes(),
            m.relaunch_ratio() * 100.0,
            m.bytes_transferred / 1e9,
            m.evictions
        );
    }
    println!("\nPado keeps the job fast by pushing map outputs to the reserved");
    println!("containers as soon as they complete — no checkpoint round-trips,");
    println!("no cascading recomputation.");
}
