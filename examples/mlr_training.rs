//! Multinomial logistic regression training on the in-process runtime —
//! the paper's Figure 3(b) workload — under a barrage of evictions.
//!
//! Demonstrates the machinery the paper builds for iterative ML jobs:
//! gradients computed on transient executors are pushed to reserved
//! aggregators the moment they finish, the broadcast model is cached per
//! executor, and evictions never trigger cascading recomputation.
//!
//! Run with: `cargo run --example mlr_training`

use pado::core::runtime::{FaultPlan, LocalCluster, RuntimeConfig};
use pado::workloads::{mlr, MlrConfig};

fn main() {
    let cfg = MlrConfig {
        samples: 600,
        features: 8,
        classes: 4,
        partitions: 8,
        iterations: 12,
        lr: 0.5,
        seed: 42,
    };
    let dag = mlr::dag(&cfg);

    // Evict a transient executor roughly every six task completions.
    let faults = FaultPlan {
        evictions: (1..15).map(|k| (k * 6, k % 3)).collect(),
        ..Default::default()
    };
    let runtime = RuntimeConfig {
        slots_per_executor: 2,
        ..Default::default()
    };

    let result = LocalCluster::new(3, 2)
        .with_config(runtime)
        .run_with_faults(&dag, faults)
        .expect("training survives the evictions");

    let model = result.outputs["Model Out"][0]
        .as_vector()
        .expect("model is a vector")
        .to_vec();
    let reference = mlr::reference(&cfg);
    let max_diff = model
        .iter()
        .zip(reference.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("iterations        : {}", cfg.iterations);
    println!("evictions handled : {}", result.metrics.evictions);
    println!("tasks launched    : {}", result.metrics.tasks_launched);
    println!("tasks relaunched  : {}", result.metrics.relaunched_tasks);
    println!("model cache hits  : {}", result.metrics.cache_hits);
    println!(
        "side input bytes  : {} sent, {} saved by caching",
        result.metrics.side_bytes_sent, result.metrics.side_bytes_saved
    );
    println!(
        "records pre-aggregated on transient executors: {}",
        result.metrics.records_preaggregated
    );
    println!(
        "training accuracy : {:.1}%",
        mlr::accuracy(&cfg, &model) * 100.0
    );
    println!("max |Δ| vs serial reference: {max_diff:.2e}");
    assert!(max_diff < 1e-9, "evictions must not change the result");
}
