//! Demonstrates the pluggable task scheduling policy (§3.2.3): running
//! the same job under the default round-robin cache-aware policy and a
//! custom "sticky" policy that pins tasks of each operator to as few
//! executors as possible.
//!
//! Run with: `cargo run --example custom_policy`

use pado::core::runtime::{Candidate, LocalCluster, SchedulingPolicy, TaskToPlace};
use pado::dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

/// Packs each operator's tasks onto the lowest-id executor with room.
struct Sticky;

impl SchedulingPolicy for Sticky {
    fn pick(&mut self, _task: TaskToPlace, candidates: &[Candidate]) -> Option<usize> {
        candidates.iter().map(|c| c.exec).min()
    }
    fn name(&self) -> &'static str {
        "sticky-lowest-id"
    }
}

fn job() -> pado::dag::LogicalDag {
    let data: Vec<Value> = (0..600).map(Value::from).collect();
    let p = Pipeline::new();
    p.read("Read", 12, SourceFn::from_vec(data))
        .par_do(
            "Bucket",
            ParDoFn::per_element(|v, e| {
                e(Value::pair(
                    Value::from(v.as_i64().unwrap() % 10),
                    v.clone(),
                ))
            }),
        )
        .combine_per_key("Sum", CombineFn::sum_i64())
        .sink("Out");
    p.build().expect("valid job")
}

fn total(result: &pado::core::runtime::JobResult) -> i64 {
    result.outputs["Out"]
        .iter()
        .map(|r| r.val().unwrap().as_i64().unwrap())
        .sum()
}

fn main() {
    let expected: i64 = (0..600).sum();

    let default = LocalCluster::new(4, 2)
        .run(&job())
        .expect("default policy run");
    println!(
        "round-robin cache-aware: {} tasks, total {}",
        default.metrics.tasks_launched,
        total(&default)
    );
    assert_eq!(total(&default), expected);

    let sticky = LocalCluster::new(4, 2)
        .with_policy(|| Box::new(Sticky))
        .run(&job())
        .expect("sticky policy run");
    println!(
        "sticky-lowest-id       : {} tasks, total {}",
        sticky.metrics.tasks_launched,
        total(&sticky)
    );
    assert_eq!(total(&sticky), expected);

    println!("\nBoth policies produce identical results; the policy only");
    println!("changes *where* tasks run — and therefore how exposed the job");
    println!("is to any single container's eviction.");
}
