//! Quickstart: a word-count on the in-process Pado runtime, with a
//! transient container evicted mid-job.
//!
//! Run with: `cargo run --example quickstart`

use pado::core::compiler::{compile, Placement};
use pado::core::runtime::{FaultPlan, LocalCluster};
use pado::dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};

fn main() {
    // 1. Write a dataflow program with the Beam-like builder.
    let corpus = vec![
        Value::from("the quick brown fox"),
        Value::from("jumps over the lazy dog"),
        Value::from("the dog barks"),
        Value::from("quick quick fox"),
    ];
    let p = Pipeline::new();
    p.read("Read", 4, SourceFn::from_vec(corpus))
        .par_do(
            "Tokenize",
            ParDoFn::per_element(|line, emit| {
                for w in line.as_str().unwrap_or("").split_whitespace() {
                    emit(Value::pair(Value::from(w), Value::from(1i64)));
                }
            }),
        )
        .combine_per_key("Count", CombineFn::sum_i64())
        .sink("Out");
    let dag = p.build().expect("valid pipeline");

    // 2. Inspect what the Pado compiler decides: the tokenizer runs on
    //    transient containers; the shuffle consumer is anchored reserved.
    let plan = compile(&dag).expect("compiles");
    println!("physical plan:");
    for fop in &plan.fops {
        let names: Vec<_> = fop
            .chain
            .iter()
            .map(|&op| dag.op(op).name.as_str())
            .collect();
        println!(
            "  stage {} [{}] x{} on {} containers",
            fop.stage,
            names.join(" -> "),
            fop.parallelism,
            match fop.placement {
                Placement::Transient => "transient",
                Placement::Reserved => "reserved",
            }
        );
    }

    // 3. Run on an in-process cluster of 3 transient + 1 reserved
    //    executors, evicting a transient container after the second task
    //    completion. The job still finishes with correct counts.
    let faults = FaultPlan {
        evictions: vec![(2, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(3, 1)
        .run_with_faults(&dag, faults)
        .expect("job completes despite the eviction");

    println!(
        "\nword counts (after {} eviction):",
        result.metrics.evictions
    );
    let mut counts: Vec<_> = result.outputs["Out"]
        .iter()
        .filter_map(|r| Some((r.key()?.as_str()?.to_string(), r.val()?.as_i64()?)))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (word, n) in counts {
        println!("  {word:<8} {n}");
    }
    println!(
        "\ntasks launched: {} ({} relaunched after eviction)",
        result.metrics.tasks_launched, result.metrics.relaunched_tasks
    );
}
