//! Alternating least squares recommendation — the paper's Figure 3(c)
//! workload — executed two ways:
//!
//! 1. for real, on the in-process runtime with evictions injected, and
//! 2. at paper scale (10 GB Yahoo!-Music-like, rank 50, 10 iterations),
//!    on the simulated 40-transient + 5-reserved cluster, comparing Pado
//!    against Spark and checkpoint-enabled Spark under a high eviction
//!    rate.
//!
//! Run with: `cargo run --release --example als_recommender`

use pado::core::runtime::{FaultPlan, LocalCluster};
use pado::engines::{simulate, Mode, SimConfig};
use pado::simcluster::LifetimeDist;
use pado::workloads::{als, AlsConfig};

fn main() {
    // --- Part 1: real execution under evictions -------------------------
    let cfg = AlsConfig {
        users: 40,
        items: 25,
        ratings: 900,
        rank: 5,
        iterations: 4,
        ..AlsConfig::default()
    };
    let faults = FaultPlan {
        evictions: vec![(5, 0), (15, 1), (30, 2), (45, 0)],
        ..Default::default()
    };
    let result = LocalCluster::new(4, 2)
        .run_with_faults(&als::dag(&cfg), faults)
        .expect("ALS completes under evictions");
    let factors = als::result_to_map(&result.outputs["Factors Out"]);
    println!("== real execution ==");
    println!("item factors learned : {}", factors.len());
    println!("evictions handled    : {}", result.metrics.evictions);
    println!("tasks relaunched     : {}", result.metrics.relaunched_tasks);
    println!("reconstruction RMSE  : {:.4}", als::rmse(&cfg, &factors));

    // The result is bit-for-bit what a fault-free serial run computes.
    let reference = als::reference(&cfg);
    for (item, want) in &reference {
        let got = &factors[item];
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
    println!("matches the serial reference exactly");

    // --- Part 2: paper-scale simulation ---------------------------------
    println!("\n== paper-scale simulation (high eviction rate) ==");
    let (dag, cost) = als::paper();
    // Minute-scale transient lifetimes, as the 0.1 % safety margin yields.
    let lifetimes = LifetimeDist::Exponential {
        mean_us: 4.0 * 60e6,
    };
    for mode in [Mode::Spark, Mode::SparkCkpt, Mode::Pado] {
        let config = SimConfig {
            n_transient: 40,
            n_reserved: 5,
            lifetimes: lifetimes.clone(),
            time_limit_us: 90 * pado::simcluster::MIN,
            ..SimConfig::default()
        };
        match simulate(mode, &dag, &cost, config) {
            Ok(m) => println!(
                "{:<18} JCT {:>6.1} min   relaunched {:>5.1}%   evictions {}",
                mode.name(),
                m.jct_minutes(),
                m.relaunch_ratio() * 100.0,
                m.evictions
            ),
            Err(e) => println!("{:<18} did not finish within 90 min ({e})", mode.name()),
        }
    }
}
