//! Minimal, offline stand-in for the `criterion` subset this workspace
//! uses. Benchmarks run and report a mean wall-clock time per iteration;
//! there is no statistical analysis, warm-up modelling, or HTML output.

use std::time::Instant;

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver. Collects named benchmark functions and times them.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
            timed_iters: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns.checked_div(b.timed_iters).unwrap_or(0);
        println!(
            "bench: {name:<40} {per_iter:>12} ns/iter ({} iters)",
            b.timed_iters
        );
        self
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
    timed_iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as u64;
        self.timed_iters += self.iters;
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
