//! Minimal, offline stand-in for the `rand` 0.8 subset this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is xoshiro256++ seeded via
//! splitmix64 — statistically solid for the simulator's distribution
//! tests, deterministic per seed, and dependency-free.

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, low < high).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample a uniform value from it.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, negligible at simulator scales.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x6C07_8965_0A5C_4F3B;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(0u32..10);
            seen[v as usize] = true;
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let sum: f64 = (0..20_000).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "got {mean}");
    }
}
