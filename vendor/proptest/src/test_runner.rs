//! The case-execution loop: a deterministic RNG, the run configuration,
//! and the reject/fail bookkeeping.

use crate::strategy::Strategy;

/// Deterministic generator handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// Returns 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration. Only `cases` is interpreted; the struct is
/// non-exhaustive-by-convention to mirror proptest's field-update syntax.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is regenerated.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Result type returned by each test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner with a fixed seed (runs are reproducible).
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x70_61_64_6F_70_72_6F_70), // "padoprop"
        }
    }

    /// Generates and executes cases until `config.cases` pass, a case
    /// fails (panics with its message), or the reject budget is exhausted.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejects = 0u64;
        let reject_budget = self.config.cases as u64 * 64 + 1024;
        while passed < self.config.cases {
            let value = strategy.gen_value(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > reject_budget {
                        panic!(
                            "proptest: too many rejected cases ({rejects}) after {passed} passes"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case #{passed} failed: {msg}");
                }
            }
        }
    }
}
