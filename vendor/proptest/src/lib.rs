//! Minimal, offline stand-in for the `proptest` subset this workspace
//! uses: the `proptest!` test macro, `prop_assert*`/`prop_assume!`,
//! strategies over integer/float ranges, tuples, `Just`, `any`,
//! `prop_oneof!`, `prop_map`, `prop_recursive`, collection and
//! character-class string strategies. Cases are generated from a fixed
//! seed (fully deterministic); there is **no shrinking** — a failing case
//! panics with the assertion message.

pub mod strategy;
pub mod test_runner;

/// String-class strategies (`"[a-z]{0,8}"`-style patterns).
pub mod string {
    pub use crate::strategy::pattern_to_string;
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

/// The glob import used by test files: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy,
/// ...) { body }` items, each carrying its own attributes (`#[test]`, doc
/// comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(&($($strat,)+), |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case (with an optional format message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
