//! Value-generation strategies. A [`Strategy`] is a pure generator: given
//! the runner's RNG it produces one value. No shrinking is implemented.

use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf; `recurse` builds a
    /// branch strategy from a strategy for the inner elements. `depth`
    /// bounds nesting; the size/branch hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, lean towards leaves so generated trees stay
            // small while still exercising nesting.
            strat = Union::new(vec![leaf.clone(), leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases this strategy behind a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: exercises infinities, NaNs, subnormals.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A character-class pattern strategy: `&'static str` literals like
/// `"[a-zA-Z0-9 ]{0,12}"` act as strategies producing `String`s.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        pattern_to_string(self, rng)
    }
}

/// Generates a string from a `[class]{lo,hi}` pattern. Supports a single
/// character class with `a-z` ranges and literal characters, followed by
/// an optional repetition count (default exactly one).
pub fn pattern_to_string(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    assert!(
        !bytes.is_empty() && bytes[0] == b'[',
        "unsupported string pattern {pattern:?}: expected [class]{{lo,hi}}"
    );
    let close = pattern
        .find(']')
        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
    let mut alphabet: Vec<char> = Vec::new();
    let class: Vec<char> = pattern[1..close].chars().collect();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
    let rest = &pattern[close + 1..];
    let (lo, hi) = if rest.is_empty() {
        (1usize, 1usize)
    } else {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
        match inner.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("repetition lower bound"),
                b.trim().parse().expect("repetition upper bound"),
            ),
            None => {
                let n: usize = inner.trim().parse().expect("repetition count");
                (n, n)
            }
        }
    };
    let len = lo + rng.below(hi - lo + 1);
    (0..len)
        .map(|_| alphabet[rng.below(alphabet.len())])
        .collect()
}

/// Maps one strategy's output through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among several strategies for the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its (non-empty) arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

/// Produces `Vec`s whose length is drawn uniformly from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.start + rng.below(self.size.end - self.size.start);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

macro_rules! strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

strategy_tuple!(A);
strategy_tuple!(A, B);
strategy_tuple!(A, B, C);
strategy_tuple!(A, B, C, D);
strategy_tuple!(A, B, C, D, E);
strategy_tuple!(A, B, C, D, E, F);
