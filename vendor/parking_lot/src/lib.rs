//! Minimal, offline stand-in for the `parking_lot` subset this workspace
//! uses: a `Mutex` whose `lock()` returns the guard directly (no poison
//! handling). Backed by `std::sync::Mutex`; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's poison-free semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual exclusion primitive with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
