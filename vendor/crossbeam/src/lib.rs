//! Minimal, offline stand-in for the `crossbeam` subset this workspace
//! uses: unbounded and bounded MPMC channels with clonable senders *and*
//! receivers, blocking `recv`/`send`, `recv_timeout`, and non-blocking
//! `try_send`/`try_recv`. Built on a `Mutex<VecDeque>` + `Condvar`;
//! throughput is adequate for the in-process runtime's control-plane
//! traffic and the threaded backend's worker pool.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Senders blocked on a full bounded channel wait here; every pop
        /// (and the last receiver's drop) signals it.
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel. Cloning produces another
    /// producer for the same queue.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloning produces another
    /// consumer competing for the same queue (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send_timeout`]; carries the unsent
    /// message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The bounded channel stayed full for the whole timeout.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => {
                    write!(f, "timed out waiting on a full channel")
                }
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages
    /// (clamped to ≥ 1); `send` blocks while full, `try_send` does not.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver has been
        /// dropped. On a full bounded channel this blocks until a
        /// receiver makes room.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = match self.shared.space.wait(queue) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    _ => {
                        queue.push_back(msg);
                        self.shared.ready.notify_one();
                        return Ok(());
                    }
                }
            }
        }

        /// Enqueues `msg`, blocking for at most `timeout` while a bounded
        /// channel stays full; fails with [`SendTimeoutError::Timeout`]
        /// (carrying the message back) once the deadline passes.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                        queue = match self.shared.space.wait_timeout(queue, deadline - now) {
                            Ok((g, _)) => g,
                            Err(poisoned) => poisoned.into_inner().0,
                        };
                    }
                    _ => {
                        queue.push_back(msg);
                        self.shared.ready.notify_one();
                        return Ok(());
                    }
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }

        /// Enqueues `msg` without blocking; fails with
        /// [`TrySendError::Full`] when a bounded channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut queue = self.shared.lock();
            if let Some(cap) = self.shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match self.shared.ready.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = match self.shared.ready.wait_timeout(queue, deadline - now) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            let msg = self.shared.lock().pop_front();
            if msg.is_some() {
                self.shared.space.notify_one();
            }
            msg
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full bounded
                // channel so they observe the disconnect.
                self.shared.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn mpmc_fan_out() {
            let (tx, rx) = unbounded::<usize>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_send_blocks_until_room_and_try_send_does_not() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            let blocked = {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(3).unwrap())
            };
            // The blocked sender completes once a slot frees up.
            assert_eq!(rx.recv(), Ok(1));
            blocked.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            drop(rx);
            assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
        }

        #[test]
        fn send_timeout_times_out_on_a_full_channel_then_succeeds() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            assert_eq!(
                tx.send_timeout(2, Duration::from_millis(10)),
                Err(SendTimeoutError::Timeout(2))
            );
            assert_eq!(rx.recv(), Ok(1));
            tx.send_timeout(2, Duration::from_millis(10)).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            drop(rx);
            assert_eq!(
                tx.send_timeout(9, Duration::from_millis(10)),
                Err(SendTimeoutError::Disconnected(9))
            );
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
