//! Minimal, offline stand-in for the `crossbeam` subset this workspace
//! uses: an unbounded MPMC channel with clonable senders *and* receivers,
//! blocking `recv`, and `recv_timeout`. Built on a `Mutex<VecDeque>` +
//! `Condvar`; throughput is adequate for the in-process runtime's
//! control-plane traffic.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel. Cloning produces another
    /// producer for the same queue.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloning produces another
    /// consumer competing for the same queue (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared.lock().push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match self.shared.ready.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = match self.shared.ready.wait_timeout(queue, deadline - now) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.lock().pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn mpmc_fan_out() {
            let (tx, rx) = unbounded::<usize>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
