//! Pado: a data processing engine for harnessing transient resources in
//! datacenters — a Rust reproduction of the EuroSys '17 paper.
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`dag`]: the logical dataflow model and Beam-like pipeline builder;
//! - [`core`]: the Pado compiler (operator placement, stage partitioning,
//!   fusion) and the in-process runtime (push-based data plane, commit
//!   protocol, eviction tolerance);
//! - [`simcluster`]: a discrete-event datacenter simulator with a
//!   transient-container eviction process;
//! - [`trace`]: the Google-trace-equivalent lifetime analysis (Figure 1,
//!   Tables 1–2);
//! - [`engines`]: simulated Pado / Spark / Spark-checkpoint engines;
//! - [`workloads`]: the ALS, MLR, and Map-Reduce evaluation workloads.
//!
//! # Examples
//!
//! ```
//! use pado::dag::{CombineFn, ParDoFn, Pipeline, SourceFn, Value};
//! use pado::core::runtime::LocalCluster;
//!
//! let p = Pipeline::new();
//! p.read("Read", 2, SourceFn::from_vec(vec![Value::from("a b a")]))
//!     .par_do(
//!         "Map",
//!         ParDoFn::per_element(|line, emit| {
//!             for w in line.as_str().unwrap_or("").split_whitespace() {
//!                 emit(Value::pair(Value::from(w), Value::from(1i64)));
//!             }
//!         }),
//!     )
//!     .combine_per_key("Reduce", CombineFn::sum_i64())
//!     .sink("Out");
//! let result = LocalCluster::new(2, 1).run(&p.build().unwrap()).unwrap();
//! assert_eq!(result.outputs["Out"].len(), 2);
//! ```
#![warn(missing_docs)]

pub use pado_core as core;
pub use pado_dag as dag;
pub use pado_engines as engines;
pub use pado_simcluster as simcluster;
pub use pado_trace as trace;
pub use pado_workloads as workloads;
